#include "gateway/tcp_gateway.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"

namespace fsr {

namespace {

/// Per-recv() chunk. Small enough that a thousand idle-ish connections don't
/// pin hundreds of megabytes of receive buffers, large enough to drain a
/// pipelined burst in a few syscalls.
constexpr std::size_t kRecvChunk = 16 * 1024;
constexpr std::size_t kRxChunkDefault = 64 * 1024;

/// epoll_event.data.u64 sentinels for the two non-connection fds; Conn
/// pointers can never collide with these.
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenTag = 1;

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

bool gateway_write_frame(int fd, const ClientFrame& frame) {
  Bytes body = encode_client_frame(frame);
  std::uint8_t len[4];
  std::uint32_t n = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
  return write_all(fd, len, 4) && write_all(fd, body.data(), body.size());
}

std::optional<ClientFrame> gateway_read_frame(int fd) {
  std::uint8_t len[4];
  if (!read_all(fd, len, 4)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= std::uint32_t{len[i]} << (8 * i);
  if (n == 0 || n > kMaxClientFrameBytes) return std::nullopt;
  auto buf = std::make_shared<Bytes>(n);
  if (!read_all(fd, buf->data(), n)) return std::nullopt;
  try {
    // Decode with the buffer as owner: request envelopes alias it all the
    // way into the broadcast path (the zero-copy contract).
    return decode_client_frame(*buf, buf);
  } catch (const CodecError& e) {
    FSR_WARN("gateway: dropping connection on malformed client frame: %s", e.what());
    return std::nullopt;
  }
}

Bytes encode_client_frame_with_prefix(const ClientFrame& frame) {
  const std::size_t body = client_wire_size(frame);
  Bytes out;
  out.reserve(4 + body);
  std::uint32_t n = static_cast<std::uint32_t>(body);
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
  Bytes encoded = encode_client_frame(frame);
  out.insert(out.end(), encoded.begin(), encoded.end());
  return out;
}

// --- EventLoop ---

GatewayServer::EventLoop::EventLoop(GatewayServer& server, std::size_t index)
    : server_(server), index_(index), role_("GatewayServer::loop") {}

GatewayServer::EventLoop::~EventLoop() {
  stop_join();
  {
    // Under the inbox mutex: a straggler queue_reply from the transport
    // thread must never write into a recycled fd.
    MutexLock lock(inbox_mutex_);
    if (wake_fd_ >= 0) {
      ::close(wake_fd_);
      wake_fd_ = -1;
    }
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

void GatewayServer::EventLoop::start() {
  epoll_fd_ = ::epoll_create1(0);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    throw std::runtime_error("gateway: epoll/eventfd creation failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  if (index_ == 0) {
    epoll_event lev{};
    lev.events = EPOLLIN;  // level-triggered: accept_ready drains to EAGAIN
    lev.data.u64 = kListenTag;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, server_.listen_fd_, &lev);
  }
  thread_ = Thread([this] { run(); });
}

void GatewayServer::EventLoop::stop_join() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(inbox_mutex_);
    tasks_.push_back([this] {
      role_.assert_held();  // lambda: runs inside drain_inbox on the loop
      stop_requested_ = true;
    });
    if (!wake_pending_ && wake_fd_ >= 0) {
      wake_pending_ = true;
      std::uint64_t one = 1;
      [[maybe_unused]] ssize_t w = ::write(wake_fd_, &one, sizeof(one));
    }
  }
  thread_.join();
}

void GatewayServer::EventLoop::wake() {
  MutexLock lock(inbox_mutex_);
  if (wake_pending_ || wake_fd_ < 0) return;
  wake_pending_ = true;
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

void GatewayServer::EventLoop::adopt_fd(int fd, std::uint64_t serial) {
  {
    MutexLock lock(inbox_mutex_);
    tasks_.push_back([this, fd, serial] {
      role_.assert_held();  // lambda: runs inside drain_inbox on the loop
      add_conn(fd, serial);
    });
  }
  wake();
}

void GatewayServer::EventLoop::queue_reply(std::uint64_t serial,
                                           const ClientReply& r) {
  {
    MutexLock lock(inbox_mutex_);
    pending_replies_.emplace_back(serial, r);
  }
  wake();
}

std::size_t GatewayServer::EventLoop::open_connections() const {
  MutexLock lock(inbox_mutex_);
  return open_conns_published_;
}

void GatewayServer::EventLoop::run() {
  ThreadRoleRegion region(role_);
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_requested_) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drained, sizeof(drained));
        continue;
      }
      if (tag == kListenTag) {
        accept_ready();
        continue;
      }
      Conn& c = *reinterpret_cast<Conn*>(static_cast<std::uintptr_t>(tag));
      if (c.fd < 0) continue;  // closed earlier this iteration
      if (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) {
        handle_readable(c);
      }
      if (c.fd >= 0 && (events[i].events & EPOLLOUT)) handle_writable(c);
    }
    drain_inbox();
    // Reap connections closed during this iteration; deferred so epoll
    // events and queued replies referencing them stay valid in between.
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = it->second->fd < 0 ? conns_.erase(it) : std::next(it);
    }
    {
      MutexLock lock(inbox_mutex_);
      open_conns_published_ = conns_.size();
    }
  }
  for (auto& [serial, conn] : conns_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  conns_.clear();
  MutexLock lock(inbox_mutex_);
  open_conns_published_ = 0;
}

void GatewayServer::EventLoop::drain_inbox() {
  std::vector<std::function<void()>> tasks;
  std::vector<std::pair<std::uint64_t, ClientReply>> replies;
  {
    MutexLock lock(inbox_mutex_);
    tasks.swap(tasks_);
    replies.swap(pending_replies_);
    wake_pending_ = false;
  }
  for (auto& t : tasks) t();
  if (!replies.empty()) flush_replies(std::move(replies));
}

void GatewayServer::EventLoop::accept_ready() {
  for (;;) {
    int fd = ::accept4(server_.listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN, or the listener was shut down by stop()
    }
    if (!server_.running_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::uint64_t serial = server_.next_serial_.fetch_add(1);
    const std::size_t target =
        server_.next_loop_.fetch_add(1) % server_.loops_.size();
    EventLoop& loop = *server_.loops_[target];
    if (&loop == this) {
      add_conn(fd, serial);
    } else {
      loop.adopt_fd(fd, serial);
    }
  }
}

void GatewayServer::EventLoop::add_conn(int fd, std::uint64_t serial) {
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->serial = serial;
  conn->rx.set_default_chunk_size(kRxChunkDefault);
  epoll_event ev{};
  // Edge-triggered both ways: reads drain to EAGAIN; writes are attempted
  // eagerly at enqueue and EPOLLOUT only matters after a write hit EAGAIN.
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(conn.get()));
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  conns_.emplace(serial, std::move(conn));
}

void GatewayServer::EventLoop::close_conn(Conn& c, bool notify_gateway) {
  if (c.fd < 0) return;
  ::close(c.fd);  // also removes it from the epoll set
  c.fd = -1;
  c.outbox.clear();
  c.outbox_bytes = 0;
  if (notify_gateway) {
    for (std::uint64_t id : c.clients_seen) {
      server_.io_.post([srv = &server_, id, serial = c.serial] {
        ThreadRoleRegion role(srv->router_.role());
        srv->router_.on_client_disconnect(id, serial);
      });
    }
  }
}

void GatewayServer::EventLoop::handle_readable(Conn& c) {
  for (;;) {
    auto buf = c.rx.writable(kRecvChunk);
    ssize_t n = ::recv(c.fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      c.rx.commit(static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < buf.size()) break;  // drained
      continue;
    }
    if (n == 0) {
      close_conn(c, true);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    close_conn(c, true);
    return;
  }
  if (!parse_frames(c)) return;  // connection dropped on a hostile frame
}

bool GatewayServer::EventLoop::parse_frames(Conn& c) {
  std::vector<ClientMsg> batch;
  for (;;) {
    auto data = c.rx.readable();
    if (data.size() < 4) break;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= std::uint32_t{data[i]} << (8 * i);
    if (len == 0 || len > kMaxClientFrameBytes) {
      close_conn(c, true);
      return false;
    }
    if (data.size() < 4 + static_cast<std::size_t>(len)) break;
    try {
      // Decode with the chunk as owner: request envelopes alias the receive
      // buffer all the way into the broadcast path.
      ClientFrame frame = decode_client_frame(data.subspan(4, len), c.rx.owner());
      for (auto& msg : frame.msgs) {
        if (const auto* hello = std::get_if<ClientHello>(&msg)) {
          c.clients_seen.insert(hello->client_id);
        } else if (const auto* req = std::get_if<ClientRequest>(&msg)) {
          c.clients_seen.insert(req->client_id);
        }
        batch.push_back(std::move(msg));
      }
    } catch (const CodecError& e) {
      FSR_WARN("gateway: dropping connection on malformed client frame: %s",
               e.what());
      close_conn(c, true);
      return false;
    }
    c.rx.consume(4 + static_cast<std::size_t>(len));
  }
  if (batch.empty()) return true;
  // One marshalled closure per socket drain: the whole burst crosses to the
  // I/O thread together and ends in a single coalescing flush, so requests
  // that arrived together leave in one broadcast envelope.
  auto loop = server_.loops_[index_];  // shared: outlives in-flight replies
  auto send = [loop, serial = c.serial](const ClientReply& r) {
    loop->queue_reply(serial, r);
  };
  server_.io_.post([srv = &server_, msgs = std::move(batch), send,
                    serial = c.serial]() mutable {
    ShardRouter& rt = srv->router_;
    ThreadRoleRegion role(rt.role());
    rt.begin_drain();
    for (auto& msg : msgs) {
      if (const auto* hello = std::get_if<ClientHello>(&msg)) {
        rt.on_hello(*hello, send, serial);
      } else if (auto* req = std::get_if<ClientRequest>(&msg)) {
        rt.on_request(*req, send, serial);
      } else if (const auto* read = std::get_if<ClientRead>(&msg)) {
        rt.on_read(*read, send);
      }
      // Client-to-server replies are not a thing; ignore them.
    }
    rt.end_drain();
  });
  return true;
}

void GatewayServer::EventLoop::enqueue_frame(Conn& c, Bytes frame) {
  c.outbox_bytes += frame.size();
  if (c.outbox_bytes > server_.cfg_.max_outbox_bytes) {
    // Slow loris: the peer stopped reading. Cut it loose rather than hold
    // reply memory hostage; its session state survives for a reconnect.
    FSR_WARN("gateway: conn serial %llu outbox overflow (%zu bytes), dropping",
             (unsigned long long)c.serial, c.outbox_bytes);
    close_conn(c, true);
    return;
  }
  c.outbox.push_back(std::move(frame));
}

void GatewayServer::EventLoop::handle_writable(Conn& c) {
  while (!c.outbox.empty()) {
    const Bytes& front = c.outbox.front();
    ssize_t n = ::send(c.fd, front.data() + c.out_off, front.size() - c.out_off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // ET resumes us
      close_conn(c, true);
      return;
    }
    c.out_off += static_cast<std::size_t>(n);
    c.outbox_bytes -= static_cast<std::size_t>(n);
    if (c.out_off == front.size()) {
      c.outbox.pop_front();
      c.out_off = 0;
    }
  }
}

void GatewayServer::EventLoop::flush_replies(
    std::vector<std::pair<std::uint64_t, ClientReply>> replies) {
  // Group per connection, preserving order, and pack each group into as few
  // frames as the codec's per-frame message cap allows.
  constexpr std::size_t kMsgsPerFrame = 1024;  // decode-side kMaxMsgsPerFrame
  std::unordered_map<std::uint64_t, ClientFrame> grouped;
  std::vector<std::uint64_t> order;
  for (auto& [serial, r] : replies) {
    auto [it, fresh] = grouped.try_emplace(serial);
    if (fresh) order.push_back(serial);
    it->second.msgs.emplace_back(std::move(r));
    if (it->second.msgs.size() >= kMsgsPerFrame) {
      auto cit = conns_.find(serial);
      if (cit != conns_.end() && cit->second->fd >= 0) {
        enqueue_frame(*cit->second, encode_client_frame_with_prefix(it->second));
      }
      it->second.msgs.clear();
    }
  }
  for (std::uint64_t serial : order) {
    auto cit = conns_.find(serial);
    if (cit == conns_.end() || cit->second->fd < 0) continue;  // died; dropped
    ClientFrame& frame = grouped[serial];
    if (!frame.msgs.empty()) {
      enqueue_frame(*cit->second, encode_client_frame_with_prefix(frame));
    }
    if (cit->second->fd >= 0) handle_writable(*cit->second);
  }
}

// --- GatewayServer ---

GatewayServer::GatewayServer(TcpTransport& io, ShardRouter& router,
                             GatewayServerConfig cfg)
    : io_(io), router_(router), cfg_(cfg) {
  if (cfg_.event_loops == 0) cfg_.event_loops = 1;
}

GatewayServer::~GatewayServer() { stop(); }

void GatewayServer::start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("gateway: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 1024) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("gateway: bind/listen failed");
  }
  set_nonblocking(listen_fd_);
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  loops_.reserve(cfg_.event_loops);
  for (std::size_t i = 0; i < cfg_.event_loops; ++i) {
    loops_.push_back(std::make_shared<EventLoop>(*this, i));
  }
  for (auto& loop : loops_) loop->start();
}

void GatewayServer::stop() {
  if (!running_.exchange(false)) return;
  // Kick the listener out of loop 0's epoll interest before the loops exit,
  // then join every loop; each closes its connection shard on the way out.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& loop : loops_) loop->stop_join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  loops_.clear();  // reply closures still in flight keep their loop alive
}

std::size_t GatewayServer::open_connections() const {
  std::size_t total = 0;
  for (const auto& loop : loops_) total += loop->open_connections();
  return total;
}

// --- TcpGatewayCluster ---

TcpGatewayCluster::TcpGatewayCluster(TcpGatewayClusterConfig config)
    : shards_(config.shards == 0 ? 1 : config.shards) {
  const std::size_t n = config.n;
  // Deferred start: the delivery tap dereferences gateways_, so every
  // gateway must exist before any I/O thread runs.
  cluster_ = std::make_unique<TcpCluster>(
      n, config.group,
      [this](NodeId id, const Delivery& d) {
        Gateway& gw = *gateways_[id][d.group];
        ThreadRoleRegion role(gw.role());
        gw.on_delivery(d);
      },
      /*autostart=*/false, shards_);
  GatewayConfig gw_cfg = config.gateway;
  // Routed shards see gappy per-session seq subsequences.
  gw_cfg.sparse_sessions = shards_ > 1;
  stores_.reserve(n);
  gateways_.resize(n);
  routers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<NodeId>(i);
    // One KvStore per node shared by its shard gateways: the keyspace
    // partition is disjoint, so each key's commands arrive from exactly one
    // shard's delivery stream and replicas converge key by key.
    stores_.push_back(std::make_unique<KvStore>());
    std::vector<Gateway*> raw;
    for (GroupId g = 0; g < shards_; ++g) {
      gateways_[i].push_back(std::make_unique<Gateway>(
          cluster_->member(id, g), *stores_.back(), gw_cfg,
          [this, id, g](Payload p) {
            cluster_->submit_from_io(id, g, std::move(p));
          }));
      raw.push_back(gateways_[i].back().get());
    }
    routers_.push_back(
        std::make_unique<ShardRouter>(std::move(raw), ShardMap(shards_)));
  }
  cluster_->start_all();
  servers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    servers_.push_back(std::make_unique<GatewayServer>(
        cluster_->transport(static_cast<NodeId>(i)), *routers_[i],
        config.server));
    servers_.back()->start(0);
  }
}

TcpGatewayCluster::~TcpGatewayCluster() {
  for (auto& s : servers_) s->stop();
  // The delivery tap points at gateways_; tear the cluster (and its I/O
  // threads) down before the gateways can go away.
  cluster_.reset();
}

std::vector<GatewayEndpoint> TcpGatewayCluster::endpoints() const {
  std::vector<GatewayEndpoint> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back({"127.0.0.1", s->port()});
  return out;
}

void TcpGatewayCluster::crash(NodeId node) {
  servers_[node]->stop();  // client connections reset first
  cluster_->crash(node);
}

GatewayCounters TcpGatewayCluster::gateway_counters() const {
  GatewayCounters total;
  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    GatewayCounters c;
    cluster_->transport(id).post_wait([&] {
      ShardRouter& rt = *routers_[i];
      ThreadRoleRegion role(rt.role());
      c = rt.counters();
    });
    total += c;
  }
  return total;
}

GatewayCounters TcpGatewayCluster::gateway_counters(GroupId shard) const {
  GatewayCounters total;
  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    GatewayCounters c;
    cluster_->transport(id).post_wait([&] {
      ShardRouter& rt = *routers_[i];
      ThreadRoleRegion role(rt.role());
      c = rt.shard_counters(shard);
    });
    total += c;
  }
  return total;
}

std::uint64_t TcpGatewayCluster::total_admitted_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t v = 0;
    cluster_->transport(id).post_wait([&] {
      ShardRouter& rt = *routers_[i];
      ThreadRoleRegion role(rt.role());
      v = rt.admitted_bytes();
    });
    total += v;
  }
  return total;
}

std::uint64_t TcpGatewayCluster::total_owned_sessions() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t v = 0;
    cluster_->transport(id).post_wait([&] {
      // A session binds in every shard; count distinct sessions once via
      // shard 0 (hello binds all shards together).
      Gateway& gw = *gateways_[i][0];
      ThreadRoleRegion role(gw.role());
      v = gw.owned_sessions();
    });
    total += v;
  }
  return total;
}

std::vector<std::uint64_t> TcpGatewayCluster::fingerprints() const {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t fp = 0;
    cluster_->transport(id).post_wait([&] { fp = stores_[i]->fingerprint(); });
    out.push_back(fp);
  }
  return out;
}

std::uint64_t TcpGatewayCluster::total_failed_cas() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t v = 0;
    cluster_->transport(id).post_wait([&] { v = stores_[i]->failed_cas(); });
    total += v;
  }
  return total;
}

std::uint64_t TcpGatewayCluster::total_applied() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t v = 0;
    cluster_->transport(id).post_wait([&] { v = stores_[i]->applied_commands(); });
    total += v;
  }
  return total;
}

}  // namespace fsr
