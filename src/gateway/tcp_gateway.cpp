#include "gateway/tcp_gateway.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>

#include "common/log.h"

namespace fsr {

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    ssize_t r = ::recv(fd, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

bool gateway_write_frame(int fd, const ClientFrame& frame) {
  Bytes body = encode_client_frame(frame);
  std::uint8_t len[4];
  std::uint32_t n = static_cast<std::uint32_t>(body.size());
  for (int i = 0; i < 4; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
  return write_all(fd, len, 4) && write_all(fd, body.data(), body.size());
}

std::optional<ClientFrame> gateway_read_frame(int fd) {
  std::uint8_t len[4];
  if (!read_all(fd, len, 4)) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) n |= std::uint32_t{len[i]} << (8 * i);
  if (n == 0 || n > kMaxClientFrameBytes) return std::nullopt;
  auto buf = std::make_shared<Bytes>(n);
  if (!read_all(fd, buf->data(), n)) return std::nullopt;
  try {
    // Decode with the buffer as owner: request envelopes alias it all the
    // way into the broadcast path (the zero-copy contract).
    return decode_client_frame(*buf, buf);
  } catch (const CodecError& e) {
    FSR_WARN("gateway: dropping connection on malformed client frame: %s", e.what());
    return std::nullopt;
  }
}

GatewayServer::GatewayServer(TcpTransport& io, Gateway& gateway)
    : io_(io), gateway_(gateway) {}

GatewayServer::~GatewayServer() { stop(); }

void GatewayServer::start(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("gateway: socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("gateway: bind/listen failed");
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  accept_thread_ = Thread([this] { accept_loop(); });
}

void GatewayServer::stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept() with shutdown, join the accept thread, and only then
  // close and clear the fd — the join is the happens-before edge that
  // keeps the field write off the accept thread's reads.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    MutexLock lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->open.load()) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  std::vector<Thread> readers;
  {
    MutexLock lock(conns_mutex_);
    readers.swap(readers_);
  }
  for (auto& t : readers) t.join();
  {
    MutexLock lock(conns_mutex_);
    for (auto& conn : conns_) {
      if (conn->open.exchange(false)) ::close(conn->fd);
    }
    conns_.clear();
  }
}

void GatewayServer::accept_loop() {
  // listen_fd_ is set before this thread starts and only mutated by stop()
  // (whose shutdown() unblocks accept); capture it once so the loop never
  // races the field write.
  const int lfd = listen_fd_;
  while (running_.load()) {
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<ClientConn>();
    conn->fd = fd;
    conn->serial = next_serial_.fetch_add(1);
    MutexLock lock(conns_mutex_);
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
}

void GatewayServer::reader_loop(std::shared_ptr<ClientConn> conn) {
  // Reply channel: encodes and writes on the caller's thread (the I/O
  // thread, via Gateway). The write mutex serializes against concurrent
  // stop(); replies after disconnect are silently dropped.
  auto send_reply = [conn](const ClientReply& r) {
    ClientFrame frame;
    frame.msgs.emplace_back(r);
    MutexLock lock(conn->write_mutex);
    if (!conn->open.load()) return;
    if (!gateway_write_frame(conn->fd, frame)) conn->open.store(false);
  };

  std::set<std::uint64_t> clients_seen;
  while (running_.load() && conn->open.load()) {
    auto frame = gateway_read_frame(conn->fd);
    if (!frame) break;
    for (auto& msg : frame->msgs) {
      if (const auto* hello = std::get_if<ClientHello>(&msg)) {
        clients_seen.insert(hello->client_id);
        io_.post([this, m = *hello, send_reply, serial = conn->serial] {
          ThreadRoleRegion role(gateway_.role());
          gateway_.on_hello(m, send_reply, serial);
        });
      } else if (const auto* req = std::get_if<ClientRequest>(&msg)) {
        clients_seen.insert(req->client_id);
        io_.post([this, m = *req, send_reply, serial = conn->serial] {
          ThreadRoleRegion role(gateway_.role());
          gateway_.on_request(m, send_reply, serial);
        });
      } else if (const auto* read = std::get_if<ClientRead>(&msg)) {
        io_.post([this, m = *read, send_reply] {
          ThreadRoleRegion role(gateway_.role());
          gateway_.on_read(m, send_reply);
        });
      }
      // Client-to-server replies are not a thing; ignore them.
    }
  }
  {
    MutexLock lock(conn->write_mutex);
    if (conn->open.exchange(false)) ::close(conn->fd);
  }
  for (std::uint64_t id : clients_seen) {
    io_.post([this, id, serial = conn->serial] {
      ThreadRoleRegion role(gateway_.role());
      gateway_.on_client_disconnect(id, serial);
    });
  }
}

TcpGatewayCluster::TcpGatewayCluster(TcpGatewayClusterConfig config) {
  const std::size_t n = config.n;
  // Deferred start: the delivery tap dereferences gateways_, so every
  // gateway must exist before any I/O thread runs.
  cluster_ = std::make_unique<TcpCluster>(
      n, config.group,
      [this](NodeId id, const Delivery& d) {
        Gateway& gw = *gateways_[id];
        ThreadRoleRegion role(gw.role());
        gw.on_delivery(d);
      },
      /*autostart=*/false);
  stores_.reserve(n);
  gateways_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<NodeId>(i);
    stores_.push_back(std::make_unique<KvStore>());
    gateways_.push_back(std::make_unique<Gateway>(
        cluster_->member(id), *stores_.back(), config.gateway,
        [this, id](Payload p) { cluster_->submit_from_io(id, std::move(p)); }));
  }
  cluster_->start_all();
  servers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    servers_.push_back(std::make_unique<GatewayServer>(
        cluster_->transport(static_cast<NodeId>(i)), *gateways_[i]));
    servers_.back()->start(0);
  }
}

TcpGatewayCluster::~TcpGatewayCluster() {
  for (auto& s : servers_) s->stop();
  // The delivery tap points at gateways_; tear the cluster (and its I/O
  // threads) down before the gateways can go away.
  cluster_.reset();
}

std::vector<GatewayEndpoint> TcpGatewayCluster::endpoints() const {
  std::vector<GatewayEndpoint> out;
  out.reserve(servers_.size());
  for (const auto& s : servers_) out.push_back({"127.0.0.1", s->port()});
  return out;
}

void TcpGatewayCluster::crash(NodeId node) {
  servers_[node]->stop();  // client connections reset first
  cluster_->crash(node);
}

GatewayCounters TcpGatewayCluster::gateway_counters() const {
  GatewayCounters total;
  for (std::size_t i = 0; i < gateways_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    GatewayCounters c;
    cluster_->transport(id).post_wait([&] {
      Gateway& gw = *gateways_[i];
      ThreadRoleRegion role(gw.role());
      c = gw.counters();
    });
    total += c;
  }
  return total;
}

std::vector<std::uint64_t> TcpGatewayCluster::fingerprints() const {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t fp = 0;
    cluster_->transport(id).post_wait([&] { fp = stores_[i]->fingerprint(); });
    out.push_back(fp);
  }
  return out;
}

std::uint64_t TcpGatewayCluster::total_failed_cas() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t v = 0;
    cluster_->transport(id).post_wait([&] { v = stores_[i]->failed_cas(); });
    total += v;
  }
  return total;
}

std::uint64_t TcpGatewayCluster::total_applied() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < stores_.size(); ++i) {
    auto id = static_cast<NodeId>(i);
    if (!cluster_->alive(id)) continue;
    std::uint64_t v = 0;
    cluster_->transport(id).post_wait([&] { v = stores_[i]->applied_commands(); });
    total += v;
  }
  return total;
}

}  // namespace fsr
