// Deterministic gateway harness: a SimCluster where every node runs a
// replicated KvStore behind a Gateway, plus a closed-loop SimClient that
// retries over simulated-time timeouts and fails over to another replica —
// the machinery the exactly-once tests and the swarm shapes drive.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "app/kv_store.h"
#include "gateway/gateway.h"
#include "gateway/shard_router.h"
#include "harness/sim_cluster.h"

namespace fsr {

struct SimGatewayConfig {
  ClusterConfig cluster;
  GatewayConfig gateway;
  /// Independent ordering domains (shards) per node, each a full
  /// Gateway + ring of its own behind one ShardRouter. Overrides
  /// cluster.groups; with more than one, gateways run sparse_sessions mode.
  GroupId shards = 1;
};

class SimGatewayCluster {
 public:
  explicit SimGatewayCluster(SimGatewayConfig config = {});

  SimCluster& cluster() { return cluster_; }
  Simulator& sim() { return cluster_.sim(); }
  std::size_t size() const { return cluster_.size(); }

  GroupId shards() const { return shards_; }
  Gateway& gateway(NodeId id) { return *gateways_[id][0]; }
  Gateway& gateway(NodeId id, GroupId shard) { return *gateways_[id][shard]; }
  ShardRouter& router(NodeId id) { return *routers_[id]; }
  KvStore& store(NodeId id) { return *stores_[id]; }

  void crash(NodeId node) { cluster_.crash(node); }
  bool alive(NodeId node) const { return cluster_.alive(node); }
  /// First alive node, skipping `except` (kNoNode if none).
  NodeId pick_alive(NodeId except = kNoNode) const;

  /// "" when every live replica's KvStore fingerprint matches; otherwise a
  /// description of the divergence.
  std::string check_replicas_converged() const;

  /// Aggregate gateway counters: across every node and shard, or one
  /// shard's slice across nodes.
  GatewayCounters gateway_counters() const;
  GatewayCounters gateway_counters(GroupId shard) const;

 private:
  SimCluster cluster_;
  GroupId shards_ = 1;
  std::vector<std::unique_ptr<KvStore>> stores_;
  std::vector<std::vector<std::unique_ptr<Gateway>>> gateways_;  ///< [node][shard]
  std::vector<std::unique_ptr<ShardRouter>> routers_;            ///< [node]
};

/// A closed-loop session client living inside the simulation: submits
/// commands one at a time, retries on a timer, and fails over to another
/// live replica when its current one crashes or stops answering. Exercises
/// the exactly-once path end to end: retries deliberately re-send executed
/// seqs and must observe duplicate-cached replies, never double execution.
class SimClient {
 public:
  struct Options {
    std::uint64_t client_id = 1;
    NodeId replica = 0;
    Time retry_timeout = 200 * kMillisecond;
    std::size_t max_attempts = 30;  ///< per command, then the client gives up
  };

  struct Done {
    std::uint64_t seq = 0;
    ClientStatus status = ClientStatus::kOk;
    bool duplicate = false;
    Bytes reply;
    std::size_t attempts = 0;
  };

  SimClient(SimGatewayCluster& gc, Options opt);
  ~SimClient();

  /// Queue a command; the client sends it when all prior commands finished
  /// (strictly closed-loop: one outstanding request).
  void submit(Bytes command);

  /// Rebind to a specific replica (tests use this to force failover).
  void connect(NodeId replica);

  bool idle() const { return !outstanding_ && pending_.empty(); }
  NodeId replica() const { return replica_; }
  const std::vector<Done>& completed() const { return completed_; }
  std::size_t gave_up() const { return gave_up_; }
  /// Total send attempts across all commands (>= completed commands).
  std::size_t attempts_total() const { return attempts_total_; }

 private:
  void maybe_send();
  void send_attempt();
  void on_reply(const ClientReply& r);
  void on_timeout();
  void failover();

  SimGatewayCluster& gc_;
  Options opt_;
  NodeId replica_;
  std::uint64_t next_seq_ = 1;
  std::deque<Bytes> pending_;
  Bytes current_cmd_;
  std::uint64_t current_seq_ = 0;
  bool outstanding_ = false;
  std::size_t attempts_ = 0;          // for the outstanding command
  std::size_t attempts_total_ = 0;
  std::size_t gave_up_ = 0;
  TimerId retry_timer_;
  /// Bumped on every connect(); stale gateway bindings carry an older epoch
  /// so their late replies are ignored (mirrors a closed TCP connection).
  std::uint64_t conn_epoch_ = 0;
  std::vector<Done> completed_;
};

}  // namespace fsr
