#include "gateway/client_driver.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "app/kv_store.h"
#include "common/log.h"
#include "common/sync.h"

namespace fsr {

GatewayClient::GatewayClient(Options opt) : opt_(std::move(opt)) {
  endpoint_ = opt_.endpoints.empty() ? 0 : opt_.start_index % opt_.endpoints.size();
}

GatewayClient::~GatewayClient() { disconnect(); }

void GatewayClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void GatewayClient::next_endpoint() {
  disconnect();
  if (!opt_.endpoints.empty()) endpoint_ = (endpoint_ + 1) % opt_.endpoints.size();
}

bool GatewayClient::ensure_connected() {
  if (fd_ >= 0) return true;
  if (opt_.endpoints.empty()) return false;
  const GatewayEndpoint& ep = opt_.endpoints[endpoint_];
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(opt_.recv_timeout / kSecond);
  tv.tv_usec = static_cast<suseconds_t>((opt_.recv_timeout % kSecond) / 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  fd_ = fd;
  ++reconnects_;
  return true;
}

std::optional<ClientReply> GatewayClient::await_reply(std::uint64_t seq) {
  for (;;) {
    auto frame = gateway_read_frame(fd_);
    if (!frame) return std::nullopt;  // timeout, EOF, or garbage
    for (auto& msg : frame->msgs) {
      if (auto* r = std::get_if<ClientReply>(&msg)) {
        if (r->client_id == opt_.client_id && r->session_seq == seq) return *r;
        // Stale reply for an earlier seq (e.g. a retransmit answered twice)
        // or a hello ack: skip and keep waiting.
      }
    }
  }
}

GatewayClient::Result GatewayClient::call(const Bytes& command) {
  Result res;
  const std::uint64_t seq = next_seq_++;
  ClientRequest req;
  req.client_id = opt_.client_id;
  req.session_seq = seq;
  req.envelope = make_payload(encode_envelope(opt_.client_id, seq, command));
  req.command = parse_envelope(req.envelope)->command;

  while (res.attempts < opt_.max_attempts) {
    ++res.attempts;
    if (!ensure_connected()) {
      next_endpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    ClientFrame frame;
    frame.msgs.emplace_back(req);
    if (!gateway_write_frame(fd_, frame)) {
      next_endpoint();
      continue;
    }
    auto reply = await_reply(seq);
    if (!reply) {
      // Timeout or reset: the replica may have crashed after admitting the
      // command. Retry through the next replica; the session layer dedupes.
      next_endpoint();
      continue;
    }
    if (reply->duplicate) ++duplicates_;
    switch (reply->status) {
      case ClientStatus::kOk:
      case ClientStatus::kBadRequest:
        res.ok = true;
        res.status = reply->status;
        res.duplicate = reply->duplicate;
        res.reply = Bytes(reply->reply.begin(), reply->reply.end());
        return res;
      case ClientStatus::kRejectedWindow:
      case ClientStatus::kRejectedBytes:
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(opt_.reject_backoff));
        continue;  // same replica; backpressure drains
      case ClientStatus::kNotMember:
        next_endpoint();
        continue;
    }
  }
  return res;
}

std::optional<Bytes> GatewayClient::read(const Bytes& query) {
  for (std::size_t attempt = 0; attempt < opt_.max_attempts; ++attempt) {
    if (!ensure_connected()) {
      next_endpoint();
      continue;
    }
    ClientRead rd;
    rd.client_id = opt_.client_id;
    // Reads are matched by read_seq but must NOT consume the session's
    // command seq namespace — the gateway's gap check would reject the
    // next command. A disjoint high range keeps reply matching unambiguous.
    rd.read_seq = next_read_seq_++;
    rd.query = make_payload(Bytes(query));
    ClientFrame frame;
    frame.msgs.emplace_back(std::move(rd));
    if (!gateway_write_frame(fd_, frame)) {
      next_endpoint();
      continue;
    }
    auto reply = await_reply(next_read_seq_ - 1);
    if (!reply) {
      next_endpoint();
      continue;
    }
    return Bytes(reply->reply.begin(), reply->reply.end());
  }
  return std::nullopt;
}

DriverReport run_client_driver(const DriverOptions& opt) {
  struct PerClient {
    std::vector<double> latencies_ms;
    std::uint64_t ok = 0;
    std::uint64_t failures = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reconnects = 0;
  };
  std::vector<PerClient> results(opt.clients);
  std::vector<Thread> threads;
  threads.reserve(opt.clients);

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      GatewayClient::Options copt;
      copt.client_id = opt.first_client_id + c;
      copt.endpoints = opt.endpoints;
      copt.start_index = c;  // spread sessions across replicas
      copt.recv_timeout = opt.recv_timeout;
      copt.max_attempts = opt.max_attempts;
      GatewayClient client(copt);
      PerClient& out = results[c];
      out.latencies_ms.reserve(opt.requests_per_client);
      const std::string value(opt.value_bytes, 'v');
      for (std::size_t i = 0; i < opt.requests_per_client; ++i) {
        Bytes cmd = KvStore::encode_put(
            "c" + std::to_string(c) + ":k" + std::to_string(i % 64), value);
        auto s = std::chrono::steady_clock::now();
        auto res = client.call(cmd);
        auto e = std::chrono::steady_clock::now();
        if (res.ok && res.status == ClientStatus::kOk) {
          ++out.ok;
          out.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(e - s).count());
        } else {
          ++out.failures;
        }
      }
      out.duplicates = client.duplicates_observed();
      out.reconnects = client.reconnects();
    });
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();

  DriverReport rep;
  std::vector<double> all;
  for (const auto& r : results) {
    rep.requests += r.ok;
    rep.failures += r.failures;
    rep.duplicates += r.duplicates;
    rep.reconnects += r.reconnects;
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  rep.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
  rep.requests_per_sec =
      rep.elapsed_sec > 0 ? double(rep.requests) / rep.elapsed_sec : 0;
  if (!all.empty()) {
    std::sort(all.begin(), all.end());
    auto pct = [&](double p) {
      std::size_t idx = static_cast<std::size_t>(p * double(all.size() - 1));
      return all[idx];
    };
    rep.p50_ms = pct(0.50);
    rep.p99_ms = pct(0.99);
    rep.max_ms = all.back();
    double sum = 0;
    for (double v : all) sum += v;
    rep.mean_ms = sum / double(all.size());
  }
  return rep;
}

}  // namespace fsr
