#include "gateway/client_driver.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>

#include "app/kv_store.h"
#include "common/log.h"
#include "common/sync.h"

namespace fsr {

GatewayClient::GatewayClient(Options opt) : opt_(std::move(opt)) {
  endpoint_ = opt_.endpoints.empty() ? 0 : opt_.start_index % opt_.endpoints.size();
}

GatewayClient::~GatewayClient() { disconnect(); }

void GatewayClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void GatewayClient::next_endpoint() {
  disconnect();
  if (!opt_.endpoints.empty()) endpoint_ = (endpoint_ + 1) % opt_.endpoints.size();
}

bool GatewayClient::ensure_connected() {
  if (fd_ >= 0) return true;
  if (opt_.endpoints.empty()) return false;
  const GatewayEndpoint& ep = opt_.endpoints[endpoint_];
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(opt_.recv_timeout / kSecond);
  tv.tv_usec = static_cast<suseconds_t>((opt_.recv_timeout % kSecond) / 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  fd_ = fd;
  ++reconnects_;
  return true;
}

std::optional<ClientReply> GatewayClient::await_reply(std::uint64_t seq) {
  for (;;) {
    auto frame = gateway_read_frame(fd_);
    if (!frame) return std::nullopt;  // timeout, EOF, or garbage
    for (auto& msg : frame->msgs) {
      if (auto* r = std::get_if<ClientReply>(&msg)) {
        if (r->client_id == opt_.client_id && r->session_seq == seq) return *r;
        // Stale reply for an earlier seq (e.g. a retransmit answered twice)
        // or a hello ack: skip and keep waiting.
      }
    }
  }
}

GatewayClient::Result GatewayClient::call(const Bytes& command) {
  Result res;
  const std::uint64_t seq = next_seq_++;
  ClientRequest req;
  req.client_id = opt_.client_id;
  req.session_seq = seq;
  req.envelope = make_payload(encode_envelope(opt_.client_id, seq, command));
  req.command = parse_envelope(req.envelope)->command;

  while (res.attempts < opt_.max_attempts) {
    ++res.attempts;
    if (!ensure_connected()) {
      next_endpoint();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    ClientFrame frame;
    frame.msgs.emplace_back(req);
    if (!gateway_write_frame(fd_, frame)) {
      next_endpoint();
      continue;
    }
    auto reply = await_reply(seq);
    if (!reply) {
      // Timeout or reset: the replica may have crashed after admitting the
      // command. Retry through the next replica; the session layer dedupes.
      next_endpoint();
      continue;
    }
    if (reply->duplicate) ++duplicates_;
    switch (reply->status) {
      case ClientStatus::kOk:
      case ClientStatus::kBadRequest:
        res.ok = true;
        res.status = reply->status;
        res.duplicate = reply->duplicate;
        res.reply = Bytes(reply->reply.begin(), reply->reply.end());
        return res;
      case ClientStatus::kRejectedWindow:
      case ClientStatus::kRejectedBytes:
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(opt_.reject_backoff));
        continue;  // same replica; backpressure drains
      case ClientStatus::kNotMember:
        next_endpoint();
        continue;
    }
  }
  return res;
}

std::optional<Bytes> GatewayClient::read(const Bytes& query) {
  for (std::size_t attempt = 0; attempt < opt_.max_attempts; ++attempt) {
    if (!ensure_connected()) {
      next_endpoint();
      continue;
    }
    ClientRead rd;
    rd.client_id = opt_.client_id;
    // Reads are matched by read_seq but must NOT consume the session's
    // command seq namespace — the gateway's gap check would reject the
    // next command. A disjoint high range keeps reply matching unambiguous.
    rd.read_seq = next_read_seq_++;
    rd.query = make_payload(Bytes(query));
    ClientFrame frame;
    frame.msgs.emplace_back(std::move(rd));
    if (!gateway_write_frame(fd_, frame)) {
      next_endpoint();
      continue;
    }
    auto reply = await_reply(next_read_seq_ - 1);
    if (!reply) {
      next_endpoint();
      continue;
    }
    return Bytes(reply->reply.begin(), reply->reply.end());
  }
  return std::nullopt;
}

namespace {

/// Fill the latency fields of a report from the pooled per-op samples.
void finish_report(DriverReport& rep, std::vector<double>& all) {
  rep.requests_per_sec =
      rep.elapsed_sec > 0 ? double(rep.requests) / rep.elapsed_sec : 0;
  if (all.empty()) return;
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    std::size_t idx = static_cast<std::size_t>(p * double(all.size() - 1));
    return all[idx];
  };
  rep.p50_ms = pct(0.50);
  rep.p99_ms = pct(0.99);
  rep.p999_ms = pct(0.999);
  rep.max_ms = all.back();
  double sum = 0;
  for (double v : all) sum += v;
  rep.mean_ms = sum / double(all.size());
}

/// One multiplexed connection: a worker thread driving `sessions` pipelined
/// sessions over a single socket, batching every due request into
/// multi-message frames and matching replies by (client_id, seq).
struct MuxWorker {
  using Clock = std::chrono::steady_clock;

  struct Op {
    bool is_read = false;
    std::uint64_t seq = 0;  ///< session_seq (commands) or read_seq (reads)
    Bytes body;             ///< encoded PUT command, or the read query
    Clock::time_point first_send{};
    bool needs_send = true;
  };

  struct Sess {
    std::uint64_t client_id = 0;
    std::uint64_t next_cmd_seq = 1;
    std::uint64_t next_read_seq = std::uint64_t{1} << 63;
    std::size_t ops_started = 0;
    std::size_t ops_done = 0;
    double read_credit = 0;  ///< deterministic read interleave accumulator
    std::deque<Op> window;   ///< in submission order (resends stay ordered)
    Clock::time_point retry_after{};
    std::size_t stalls = 0;  ///< resend rounds without progress
    bool abandoned = false;
  };

  const DriverOptions& opt;
  std::vector<Sess> sessions;
  int fd = -1;
  std::size_t endpoint = 0;
  std::vector<double> latencies_ms;
  std::uint64_t ok = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t failures = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reconnects = 0;

  explicit MuxWorker(const DriverOptions& o, std::size_t start_ep)
      : opt(o), endpoint(start_ep % std::max<std::size_t>(1, o.endpoints.size())) {}

  bool connect_once() {
    const GatewayEndpoint& ep = opt.endpoints[endpoint];
    int s = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      ::close(s);
      return false;
    }
    int one = 1;
    ::setsockopt(s, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(opt.recv_timeout / kSecond);
    tv.tv_usec = static_cast<suseconds_t>((opt.recv_timeout % kSecond) / 1000);
    ::setsockopt(s, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    fd = s;
    ++reconnects;
    return true;
  }

  /// Drop the socket, rotate endpoints, and mark every outstanding op for
  /// retransmission (the dedupe layer makes resends exactly-once). Gives up
  /// after max_attempts consecutive connection failures.
  bool reconnect() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    for (auto& s : sessions) {
      for (auto& op : s.window) op.needs_send = true;
    }
    for (std::size_t attempt = 0; attempt < opt.max_attempts; ++attempt) {
      endpoint = (endpoint + 1) % opt.endpoints.size();
      if (connect_once()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  void abandon_all() {
    for (auto& s : sessions) {
      if (s.abandoned) continue;
      s.abandoned = true;
      failures += opt.requests_per_client - s.ops_done;
    }
  }

  /// Generate ops up to the pipeline depth and send everything due,
  /// packed into frames of at most 1024 messages (the decode cap).
  bool fill_and_send(Clock::time_point now) {
    ClientFrame frame;
    auto flush = [&]() -> bool {
      if (frame.msgs.empty()) return true;
      bool sent = gateway_write_frame(fd, frame);
      frame.msgs.clear();
      return sent;
    };
    const std::string value(opt.value_bytes, 'v');
    for (std::size_t si = 0; si < sessions.size(); ++si) {
      Sess& s = sessions[si];
      if (s.abandoned || now < s.retry_after) continue;
      while (s.window.size() < opt.pipeline &&
             s.ops_started < opt.requests_per_client) {
        Op op;
        s.read_credit += opt.read_fraction;
        if (s.read_credit >= 1.0) {
          s.read_credit -= 1.0;
          op.is_read = true;
          op.seq = s.next_read_seq++;
          op.body = KvStore::encode_get("m" + std::to_string(si) + ":k" +
                                        std::to_string(s.ops_started % 64));
        } else {
          op.seq = s.next_cmd_seq++;
          op.body = KvStore::encode_put(
              "m" + std::to_string(si) + ":k" +
                  std::to_string(s.ops_started % 64),
              value);
        }
        ++s.ops_started;
        s.window.push_back(std::move(op));
      }
      for (auto& op : s.window) {
        if (!op.needs_send) continue;
        op.needs_send = false;
        if (op.first_send == Clock::time_point{}) op.first_send = now;
        if (op.is_read) {
          ClientRead rd;
          rd.client_id = s.client_id;
          rd.read_seq = op.seq;
          rd.query = make_payload(Bytes(op.body));
          frame.msgs.emplace_back(std::move(rd));
        } else {
          ClientRequest req;
          req.client_id = s.client_id;
          req.session_seq = op.seq;
          req.envelope =
              make_payload(encode_envelope(s.client_id, op.seq, op.body));
          req.command = parse_envelope(req.envelope)->command;
          frame.msgs.emplace_back(std::move(req));
        }
        if (frame.msgs.size() >= 1024 && !flush()) return false;
      }
    }
    return flush();
  }

  void handle_reply(const ClientReply& r, Clock::time_point now) {
    // client_id → session index is a dense mapping by construction.
    if (r.client_id < sessions.front().client_id) return;
    std::size_t si = static_cast<std::size_t>(r.client_id - sessions.front().client_id);
    if (si >= sessions.size()) return;
    Sess& s = sessions[si];
    auto it = std::find_if(s.window.begin(), s.window.end(),
                           [&](const Op& op) { return op.seq == r.session_seq; });
    if (it == s.window.end()) return;  // stale duplicate of a finished op
    switch (r.status) {
      case ClientStatus::kOk:
      case ClientStatus::kBadRequest:
        if (r.duplicate) ++duplicates;
        if (r.status == ClientStatus::kOk) {
          ++ok;
          if (it->is_read) ++reads_ok;
          latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                     now - it->first_send)
                                     .count());
        } else {
          ++failures;
        }
        ++s.ops_done;
        s.stalls = 0;
        s.window.erase(it);
        break;
      case ClientStatus::kRejectedWindow:
      case ClientStatus::kRejectedBytes:
        // Backpressure: this seq and everything the session pipelined above
        // it were turned away. Resend the whole tail, in order, after a
        // short backoff.
        for (auto jt = it; jt != s.window.end(); ++jt) jt->needs_send = true;
        s.retry_after = now + std::chrono::milliseconds(2);
        break;
      case ClientStatus::kNotMember:
        for (auto jt = it; jt != s.window.end(); ++jt) jt->needs_send = true;
        s.retry_after = now + std::chrono::milliseconds(10);
        break;
    }
  }

  bool done() const {
    for (const auto& s : sessions) {
      if (!s.abandoned && s.ops_done < opt.requests_per_client) return false;
    }
    return true;
  }

  void run() {
    if (opt.endpoints.empty() || sessions.empty()) return;
    if (!connect_once() && !reconnect()) {
      abandon_all();
      return;
    }
    while (!done()) {
      auto now = Clock::now();
      if (!fill_and_send(now)) {
        if (!reconnect()) {
          abandon_all();
          return;
        }
        continue;
      }
      bool outstanding = false;
      for (const auto& s : sessions) {
        if (!s.abandoned && !s.window.empty()) outstanding = true;
      }
      if (!outstanding) {
        // Every live session is inside a backoff window; let it lapse.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      auto frame = gateway_read_frame(fd);
      now = Clock::now();
      if (!frame) {
        // Timeout, EOF, or reset: count a stall against every session still
        // waiting, abandon the ones past the attempt budget, and resend the
        // rest through the next replica.
        for (auto& s : sessions) {
          if (s.abandoned || s.window.empty()) continue;
          if (++s.stalls >= opt.max_attempts) {
            failures += opt.requests_per_client - s.ops_done;
            s.abandoned = true;
            s.window.clear();
          }
        }
        if (!done() && !reconnect()) {
          abandon_all();
          return;
        }
        continue;
      }
      for (auto& msg : frame->msgs) {
        if (auto* r = std::get_if<ClientReply>(&msg)) handle_reply(*r, now);
      }
    }
  }
};

DriverReport run_multiplexed_driver(const DriverOptions& opt) {
  const std::size_t conns = std::min(opt.connections, std::max<std::size_t>(1, opt.clients));
  std::vector<std::unique_ptr<MuxWorker>> workers;
  workers.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    workers.push_back(std::make_unique<MuxWorker>(opt, c));
  }
  // Sessions round-robin across connections; client ids stay dense per
  // worker so reply matching is an index, not a map.
  std::size_t next_id = 0;
  for (std::size_t c = 0; c < conns; ++c) {
    MuxWorker& w = *workers[c];
    const std::size_t count = opt.clients / conns + (c < opt.clients % conns ? 1 : 0);
    w.sessions.resize(count);
    for (auto& s : w.sessions) {
      s.client_id = opt.first_client_id + next_id++;
    }
    w.latencies_ms.reserve(count * opt.requests_per_client);
  }

  std::vector<Thread> threads;
  threads.reserve(conns);
  auto t0 = std::chrono::steady_clock::now();
  for (auto& w : workers) {
    threads.emplace_back([&w] { w->run(); });
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();

  DriverReport rep;
  std::vector<double> all;
  for (const auto& w : workers) {
    rep.requests += w->ok;
    rep.reads += w->reads_ok;
    rep.failures += w->failures;
    rep.duplicates += w->duplicates;
    rep.reconnects += w->reconnects;
    all.insert(all.end(), w->latencies_ms.begin(), w->latencies_ms.end());
  }
  rep.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
  finish_report(rep, all);
  return rep;
}

}  // namespace

DriverReport run_client_driver(const DriverOptions& opt) {
  if (opt.connections > 0) return run_multiplexed_driver(opt);
  struct PerClient {
    std::vector<double> latencies_ms;
    std::uint64_t ok = 0;
    std::uint64_t failures = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reconnects = 0;
  };
  std::vector<PerClient> results(opt.clients);
  std::vector<Thread> threads;
  threads.reserve(opt.clients);

  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      GatewayClient::Options copt;
      copt.client_id = opt.first_client_id + c;
      copt.endpoints = opt.endpoints;
      copt.start_index = c;  // spread sessions across replicas
      copt.recv_timeout = opt.recv_timeout;
      copt.max_attempts = opt.max_attempts;
      GatewayClient client(copt);
      PerClient& out = results[c];
      out.latencies_ms.reserve(opt.requests_per_client);
      const std::string value(opt.value_bytes, 'v');
      for (std::size_t i = 0; i < opt.requests_per_client; ++i) {
        Bytes cmd = KvStore::encode_put(
            "c" + std::to_string(c) + ":k" + std::to_string(i % 64), value);
        auto s = std::chrono::steady_clock::now();
        auto res = client.call(cmd);
        auto e = std::chrono::steady_clock::now();
        if (res.ok && res.status == ClientStatus::kOk) {
          ++out.ok;
          out.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(e - s).count());
        } else {
          ++out.failures;
        }
      }
      out.duplicates = client.duplicates_observed();
      out.reconnects = client.reconnects();
    });
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();

  DriverReport rep;
  std::vector<double> all;
  for (const auto& r : results) {
    rep.requests += r.ok;
    rep.failures += r.failures;
    rep.duplicates += r.duplicates;
    rep.reconnects += r.reconnects;
    all.insert(all.end(), r.latencies_ms.begin(), r.latencies_ms.end());
  }
  rep.elapsed_sec = std::chrono::duration<double>(t1 - t0).count();
  finish_report(rep, all);
  return rep;
}

}  // namespace fsr
