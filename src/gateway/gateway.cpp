#include "gateway/gateway.h"

#include <utility>

#include "common/log.h"

namespace fsr {

Gateway::Gateway(GroupMember& member, StateMachine& machine, GatewayConfig config,
                 SubmitFn submit)
    : member_(member), machine_(machine), cfg_(config), submit_(std::move(submit)) {
  if (!submit_) {
    submit_ = [this](Payload p) { member_.broadcast(std::move(p)); };
  }
}

void Gateway::reply(OwnedSession& own, const ClientReply& r) {
  if (!own.send) return;
  ++counters_.replies_sent;
  own.send(r);
}

const Gateway::CachedReply* Gateway::cached(const SessionState& sess,
                                            std::uint64_t seq) const {
  for (const auto& c : sess.cache) {
    if (c.seq == seq) return &c;
  }
  return nullptr;
}

void Gateway::on_hello(const ClientHello& hello, SendReplyFn send,
                       std::uint64_t conn_serial) {
  auto& own = owned_[hello.client_id];
  own.send = std::move(send);
  own.conn_serial = conn_serial;
  auto& sess = sessions_[hello.client_id];
  if (own.highest_admitted < sess.last_executed) {
    own.highest_admitted = sess.last_executed;
  }
  if (own.last_replied < sess.last_executed) own.last_replied = sess.last_executed;
  // Ack the hello so the client learns its replicated session position and
  // can resume after failover without resending executed commands.
  ClientReply ack;
  ack.client_id = hello.client_id;
  ack.session_seq = sess.last_executed;
  ack.status = ClientStatus::kOk;
  reply(own, ack);
}

void Gateway::admit(std::uint64_t client_id, OwnedSession& own, std::uint64_t seq,
                    Payload envelope) {
  const std::size_t bytes = envelope.size();
  own.in_flight.emplace(seq, bytes);
  if (own.highest_admitted < seq) own.highest_admitted = seq;
  admitted_bytes_ += bytes;
  ++counters_.admitted;
  counters_.admitted_bytes_total += bytes;
  (void)client_id;
  submit_(std::move(envelope));
}

void Gateway::on_request(const ClientRequest& req, SendReplyFn send,
                         std::uint64_t conn_serial) {
  ++counters_.requests;
  auto& sess = sessions_[req.client_id];
  auto [it, fresh] = owned_.try_emplace(req.client_id);
  OwnedSession& own = it->second;
  if (fresh) {
    own.highest_admitted = sess.last_executed;
    own.last_replied = sess.last_executed;
  }
  if (send) own.send = std::move(send);
  if (conn_serial) own.conn_serial = conn_serial;

  auto reject = [&](ClientStatus status, std::uint64_t& counter) {
    role_.assert_held();  // lambda: the enclosing REQUIRES doesn't carry in
    ++counter;
    ClientReply r;
    r.client_id = req.client_id;
    r.session_seq = req.session_seq;
    r.status = status;
    reply(own, r);
  };

  if (req.session_seq == 0 || !req.envelope || req.envelope.empty()) {
    return reject(ClientStatus::kBadRequest, counters_.rejected_malformed);
  }
  if (req.command.size() > cfg_.max_command_bytes) {
    return reject(ClientStatus::kBadRequest, counters_.rejected_malformed);
  }

  if (req.session_seq <= sess.last_executed) {
    // Retry of an executed command: answer from the replicated reply cache.
    // An aged-out entry still gets an explicit (empty) duplicate ack — the
    // command provably executed, which is all exactly-once owes the client.
    ++counters_.duplicate_hits;
    ClientReply r;
    r.client_id = req.client_id;
    r.session_seq = req.session_seq;
    r.status = ClientStatus::kOk;
    r.duplicate = true;
    if (const CachedReply* c = cached(sess, req.session_seq)) r.reply = c->reply;
    reply(own, r);
    return;
  }
  if (req.session_seq <= own.highest_admitted) {
    // Retry of a command already admitted or queued here: the reply is owed
    // when its delivery resolves; don't admit it twice.
    ++counters_.duplicate_hits;
    return;
  }
  auto backpressure = [&](ClientStatus status, std::uint64_t& counter) {
    role_.assert_held();  // lambda: the enclosing REQUIRES doesn't carry in
    own.rejected_tail = req.session_seq;
    own.rejected_status = status;
    reject(status, counter);
  };

  const std::uint64_t expected =
      std::max(sess.last_executed, own.highest_admitted) + 1;
  if (req.session_seq != expected) {
    // A burst that keeps pipelining above a just-rejected seq is the same
    // backpressure event; anything else is a client fabricating seqs.
    if (own.rejected_tail >= expected && req.session_seq > own.rejected_tail) {
      std::uint64_t& counter = own.rejected_status == ClientStatus::kRejectedBytes
                                   ? counters_.rejected_bytes
                                   : counters_.rejected_window;
      return backpressure(own.rejected_status, counter);
    }
    // The client is strictly ahead of this replica (everything at or below
    // max(last_executed, highest_admitted) was handled above). Two cases
    // land here and the gateway cannot tell them apart: a failed-over
    // client whose acked commands were delivered on the leading replica
    // but not here yet, and a client fabricating seqs. Neither may be
    // admitted (that would stamp highest_admitted past the real chain),
    // but neither is provably bad either — so reject retryable: the honest
    // client succeeds once delivery catches this replica up, while the
    // fabricator just burns its own retry budget without ever poisoning
    // the session.
    return backpressure(ClientStatus::kRejectedWindow, counters_.rejected_ahead);
  }
  if (!member_.in_group()) {
    return reject(ClientStatus::kNotMember, counters_.rejected_malformed);
  }
  if (admitted_bytes_ + req.envelope.size() > cfg_.admitted_bytes_budget) {
    return backpressure(ClientStatus::kRejectedBytes, counters_.rejected_bytes);
  }
  if (own.in_flight.size() >= cfg_.session_window) {
    if (own.queue.size() >= cfg_.session_queue) {
      return backpressure(ClientStatus::kRejectedWindow, counters_.rejected_window);
    }
    own.queue.emplace_back(req.session_seq, req.envelope);
    own.queued_bytes += req.envelope.size();
    admitted_bytes_ += req.envelope.size();
    if (own.highest_admitted < req.session_seq) {
      own.highest_admitted = req.session_seq;
    }
    own.rejected_tail = 0;
    ++counters_.queued;
    return;
  }
  own.rejected_tail = 0;
  admit(req.client_id, own, req.session_seq, req.envelope);
}

void Gateway::on_read(const ClientRead& read, const SendReplyFn& send) {
  ++counters_.reads;
  if (!send) return;
  ClientReply r;
  r.client_id = read.client_id;
  r.session_seq = read.read_seq;
  r.status = ClientStatus::kOk;
  r.reply = make_payload(machine_.query(read.query.span()));
  ++counters_.replies_sent;
  send(r);
}

void Gateway::on_client_disconnect(std::uint64_t client_id,
                                   std::uint64_t conn_serial) {
  auto it = owned_.find(client_id);
  if (it == owned_.end()) return;
  OwnedSession& own = it->second;
  if (conn_serial && own.conn_serial != conn_serial) return;  // stale teardown
  // Release this client's share of the byte budget. In-flight broadcasts
  // still deliver (and execute everywhere); only the reply channel and the
  // local accounting go away.
  for (const auto& [seq, bytes] : own.in_flight) admitted_bytes_ -= bytes;
  admitted_bytes_ -= own.queued_bytes;
  owned_.erase(it);
}

void Gateway::refill(std::uint64_t client_id, OwnedSession& own,
                     const SessionState& sess) {
  while (own.in_flight.size() < cfg_.session_window && !own.queue.empty()) {
    auto [seq, envelope] = std::move(own.queue.front());
    own.queue.pop_front();
    own.queued_bytes -= envelope.size();
    if (seq <= sess.last_executed) {
      // Executed while queued (another replica's broadcast won); its reply
      // was already routed at that delivery. Just release the bytes.
      admitted_bytes_ -= envelope.size();
      continue;
    }
    // admit() re-adds the bytes; drop the queued share first.
    admitted_bytes_ -= envelope.size();
    admit(client_id, own, seq, std::move(envelope));
  }
}

void Gateway::on_delivery(const Delivery& d) {
  std::optional<GatewayCommand> cmd;
  try {
    cmd = parse_envelope(d.payload);
  } catch (const CodecError& e) {
    ++counters_.rejected_malformed;
    FSR_WARN("gateway: malformed envelope from node %u dropped: %s",
             (unsigned)d.origin, e.what());
    return;
  }
  if (!cmd) {
    // Not gateway traffic — a plain application broadcast.
    machine_.apply(d.origin, d.payload.span());
    return;
  }

  auto& sess = sessions_[cmd->client_id];
  ClientStatus status = ClientStatus::kOk;
  bool duplicate = false;
  Payload result;

  if (cmd->session_seq == sess.last_executed + 1) {
    result = make_payload(machine_.apply_with_reply(d.origin, cmd->command.span()));
    sess.last_executed = cmd->session_seq;
    sess.cache.push_back(CachedReply{cmd->session_seq, result});
    while (sess.cache.size() > cfg_.reply_cache) {
      sess.cache.pop_front();
      ++counters_.reply_cache_evictions;
    }
    ++counters_.commands_applied;
  } else if (cmd->session_seq <= sess.last_executed) {
    // The same command won the race twice (e.g. a crashed replica's
    // broadcast recovered by the view change plus the client's retry
    // through us). Deterministically suppressed on every replica.
    ++counters_.duplicate_applies_suppressed;
    duplicate = true;
    if (const CachedReply* c = cached(sess, cmd->session_seq)) result = c->reply;
  } else {
    // A session gap can only mean a buggy or byzantine client fabricating
    // seqs (admission never lets one through); never execute out of order.
    ++counters_.envelope_gaps;
    status = ClientStatus::kBadRequest;
  }

  // Response routing: if this replica owns the client's connection and the
  // client is owed an answer for this seq, this delivery resolves it —
  // regardless of which replica's broadcast got sequenced first.
  auto it = owned_.find(cmd->client_id);
  if (it != owned_.end()) {
    OwnedSession& own = it->second;
    if (cmd->session_seq > own.last_replied &&
        cmd->session_seq <= own.highest_admitted) {
      ClientReply r;
      r.client_id = cmd->client_id;
      r.session_seq = cmd->session_seq;
      r.status = status;
      r.duplicate = duplicate;
      r.reply = result;
      reply(own, r);
      own.last_replied = cmd->session_seq;
    }
    if (d.origin == member_.self()) {
      auto fit = own.in_flight.find(cmd->session_seq);
      if (fit != own.in_flight.end()) {
        admitted_bytes_ -= fit->second;
        own.in_flight.erase(fit);
      }
    }
    refill(cmd->client_id, own, sess);
  }
}

std::uint64_t Gateway::last_executed(std::uint64_t client_id) const {
  auto it = sessions_.find(client_id);
  return it == sessions_.end() ? 0 : it->second.last_executed;
}

}  // namespace fsr
