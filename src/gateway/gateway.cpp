#include "gateway/gateway.h"

#include <utility>

#include "common/log.h"

namespace fsr {

Gateway::Gateway(GroupMember& member, StateMachine& machine, GatewayConfig config,
                 SubmitFn submit)
    : member_(member), machine_(machine), cfg_(config), submit_(std::move(submit)) {
  if (!submit_) {
    submit_ = [this](Payload p) { member_.broadcast(std::move(p)); };
  }
}

void Gateway::reply(OwnedSession& own, const ClientReply& r) {
  if (!own.send) {
    // Owed but unroutable: the binding outlived its reply channel.
    ++counters_.orphaned_reply_drops;
    return;
  }
  ++counters_.replies_sent;
  own.send(r);
}

const Gateway::CachedReply* Gateway::cached(const SessionState& sess,
                                            std::uint64_t seq) const {
  for (const auto& c : sess.cache) {
    if (c.seq == seq) return &c;
  }
  return nullptr;
}

void Gateway::on_hello(const ClientHello& hello, SendReplyFn send,
                       std::uint64_t conn_serial, bool send_ack) {
  auto& own = owned_[hello.client_id];
  own.send = std::move(send);
  own.conn_serial = conn_serial;
  auto& sess = sessions_[hello.client_id];
  if (own.highest_admitted < sess.last_executed) {
    own.highest_admitted = sess.last_executed;
  }
  if (own.last_replied < sess.last_executed) own.last_replied = sess.last_executed;
  if (!send_ack) return;
  // Ack the hello so the client learns its replicated session position and
  // can resume after failover without resending executed commands.
  ClientReply ack;
  ack.client_id = hello.client_id;
  ack.session_seq = sess.last_executed;
  ack.status = ClientStatus::kOk;
  reply(own, ack);
}

void Gateway::enqueue_envelope(const Payload& envelope) {
  if (!cfg_.coalesce) {
    submit_(envelope);
    return;
  }
  batch_.append(envelope);
  ++counters_.coalesced_envelopes;
  if (batch_.count() >= cfg_.coalesce_max_envelopes ||
      batch_.bytes() >= cfg_.coalesce_max_bytes) {
    flush_coalesced();
    return;
  }
  arm_flush_timer();
}

void Gateway::flush_coalesced() {
  if (batch_.empty()) return;
  ++counters_.coalesce_flushes;
  submit_(batch_.take());
}

void Gateway::begin_drain() { in_drain_ = true; }

void Gateway::end_drain() {
  in_drain_ = false;
  flush_coalesced();
}

void Gateway::arm_flush_timer() {
  // Inside a drain scope the caller guarantees a flush at scope end, so the
  // hot path never touches the transport's timer wheel (per-request timers
  // cost ~2x throughput at low concurrency on a busy I/O thread).
  if (in_drain_ || flush_timer_armed_) return;
  flush_timer_armed_ = true;
  // Deterministic under SimTransport; on TCP this runs on the I/O thread
  // (where the gateway lives), so the transport's role check passes.
  member_.transport().set_timer(cfg_.coalesce_flush_delay, [this] {
    ThreadRoleRegion role(role_);
    flush_timer_armed_ = false;
    flush_coalesced();
  });
}

void Gateway::admit(std::uint64_t client_id, OwnedSession& own, std::uint64_t seq,
                    Payload envelope) {
  const std::size_t bytes = envelope.size();
  own.in_flight.emplace(seq, bytes);
  if (own.highest_admitted < seq) own.highest_admitted = seq;
  admitted_bytes_ += bytes;
  ++counters_.admitted;
  counters_.admitted_bytes_total += bytes;
  (void)client_id;
  enqueue_envelope(envelope);
}

void Gateway::on_request(const ClientRequest& req, SendReplyFn send,
                         std::uint64_t conn_serial) {
  ++counters_.requests;
  auto& sess = sessions_[req.client_id];
  auto [it, fresh] = owned_.try_emplace(req.client_id);
  OwnedSession& own = it->second;
  if (fresh) {
    own.highest_admitted = sess.last_executed;
    own.last_replied = sess.last_executed;
  }
  if (send) own.send = std::move(send);
  if (conn_serial) own.conn_serial = conn_serial;

  auto reject = [&](ClientStatus status, std::uint64_t& counter) {
    role_.assert_held();  // lambda: the enclosing REQUIRES doesn't carry in
    ++counter;
    ClientReply r;
    r.client_id = req.client_id;
    r.session_seq = req.session_seq;
    r.status = status;
    reply(own, r);
  };

  if (req.session_seq == 0 || !req.envelope || req.envelope.empty()) {
    return reject(ClientStatus::kBadRequest, counters_.rejected_malformed);
  }
  if (req.command.size() > cfg_.max_command_bytes) {
    return reject(ClientStatus::kBadRequest, counters_.rejected_malformed);
  }

  if (cfg_.sparse_sessions && own.rejected_tail != 0 &&
      req.session_seq <= own.rejected_tail) {
    // The backpressured tail is being resent from its head (drivers resend
    // the whole tail in order): re-open the gate and let the checks below
    // re-decide. A fresh rejection re-arms it.
    own.rejected_tail = 0;
  }

  if (req.session_seq <= sess.last_executed) {
    // Retry of an executed command: answer from the replicated reply cache.
    // An aged-out entry still gets an explicit (empty) duplicate ack — the
    // command provably executed, which is all exactly-once owes the client.
    ++counters_.duplicate_hits;
    ClientReply r;
    r.client_id = req.client_id;
    r.session_seq = req.session_seq;
    r.status = ClientStatus::kOk;
    r.duplicate = true;
    if (const CachedReply* c = cached(sess, req.session_seq)) r.reply = c->reply;
    reply(own, r);
    return;
  }
  if (req.session_seq <= own.highest_admitted) {
    // Retry of a command already admitted or queued here: the reply is owed
    // when its delivery resolves; don't admit it twice.
    ++counters_.duplicate_hits;
    return;
  }
  auto backpressure = [&](ClientStatus status, std::uint64_t& counter) {
    role_.assert_held();  // lambda: the enclosing REQUIRES doesn't carry in
    own.rejected_tail = req.session_seq;
    own.rejected_status = status;
    reject(status, counter);
  };

  const std::uint64_t expected =
      std::max(sess.last_executed, own.highest_admitted) + 1;
  if (cfg_.sparse_sessions) {
    // One shard of a routed session sees a gappy subsequence of the seq
    // stream, so contiguity cannot hold; what exactly-once needs is
    // in-order admission per shard, and the rejected-tail gate preserves
    // it: once any seq bounced, every higher seq bounces too until the
    // client resends the rejected one (re-opened above).
    if (own.rejected_tail != 0 && req.session_seq > own.rejected_tail) {
      std::uint64_t& counter = own.rejected_status == ClientStatus::kRejectedBytes
                                   ? counters_.rejected_bytes
                                   : counters_.rejected_window;
      return backpressure(own.rejected_status, counter);
    }
  } else if (req.session_seq != expected) {
    // A burst that keeps pipelining above a just-rejected seq is the same
    // backpressure event; anything else is a client fabricating seqs.
    if (own.rejected_tail >= expected && req.session_seq > own.rejected_tail) {
      std::uint64_t& counter = own.rejected_status == ClientStatus::kRejectedBytes
                                   ? counters_.rejected_bytes
                                   : counters_.rejected_window;
      return backpressure(own.rejected_status, counter);
    }
    // The client is strictly ahead of this replica (everything at or below
    // max(last_executed, highest_admitted) was handled above). Two cases
    // land here and the gateway cannot tell them apart: a failed-over
    // client whose acked commands were delivered on the leading replica
    // but not here yet, and a client fabricating seqs. Neither may be
    // admitted (that would stamp highest_admitted past the real chain),
    // but neither is provably bad either — so reject retryable: the honest
    // client succeeds once delivery catches this replica up, while the
    // fabricator just burns its own retry budget without ever poisoning
    // the session.
    return backpressure(ClientStatus::kRejectedWindow, counters_.rejected_ahead);
  }
  if (!member_.in_group()) {
    return reject(ClientStatus::kNotMember, counters_.rejected_malformed);
  }
  if (admitted_bytes_ + req.envelope.size() > cfg_.admitted_bytes_budget) {
    return backpressure(ClientStatus::kRejectedBytes, counters_.rejected_bytes);
  }
  if (own.in_flight.size() >= cfg_.session_window) {
    if (own.queue.size() >= cfg_.session_queue) {
      return backpressure(ClientStatus::kRejectedWindow, counters_.rejected_window);
    }
    own.queue.emplace_back(req.session_seq, req.envelope);
    own.queued_bytes += req.envelope.size();
    admitted_bytes_ += req.envelope.size();
    if (own.highest_admitted < req.session_seq) {
      own.highest_admitted = req.session_seq;
    }
    own.rejected_tail = 0;
    ++counters_.queued;
    return;
  }
  own.rejected_tail = 0;
  admit(req.client_id, own, req.session_seq, req.envelope);
}

bool Gateway::lease_valid() const {
  return lease_view_ != 0 && lease_view_ == member_.view().id &&
         !member_.flushing() && member_.transport().now() <= lease_expiry_;
}

void Gateway::on_read(const ClientRead& read, const SendReplyFn& send) {
  ++counters_.reads;
  if (!send) return;
  if (cfg_.read_mode == GatewayReadMode::kLeased && !lease_valid()) {
    // Lease-cold: this replica may be behind the ring. Round-trip the query
    // through total order so it observes every write sequenced before it —
    // and let the leader see traffic to re-grant the lease.
    if (read.query.size() > cfg_.max_command_bytes || !member_.in_group() ||
        pending_reads_.size() >= cfg_.max_pending_reads) {
      ClientReply r;
      r.client_id = read.client_id;
      r.session_seq = read.read_seq;
      r.status = pending_reads_.size() >= cfg_.max_pending_reads ||
                         !member_.in_group()
                     ? ClientStatus::kRejectedWindow
                     : ClientStatus::kBadRequest;
      ++counters_.replies_sent;
      send(r);
      return;
    }
    ++counters_.reads_ordered;
    pending_reads_[{read.client_id, read.read_seq}] = send;
    enqueue_envelope(make_payload(
        encode_read_envelope(read.client_id, read.read_seq, read.query.span())));
    return;
  }
  ++counters_.reads_local;
  ClientReply r;
  r.client_id = read.client_id;
  r.session_seq = read.read_seq;
  r.status = ClientStatus::kOk;
  r.reply = make_payload(machine_.query(read.query.span()));
  ++counters_.replies_sent;
  send(r);
}

void Gateway::on_client_disconnect(std::uint64_t client_id,
                                   std::uint64_t conn_serial) {
  auto it = owned_.find(client_id);
  if (it == owned_.end()) return;
  OwnedSession& own = it->second;
  if (conn_serial && own.conn_serial != conn_serial) return;  // stale teardown
  // Release this client's share of the byte budget. In-flight broadcasts
  // still deliver (and execute everywhere); only the reply channel and the
  // local accounting go away. Every admitted-or-queued seq the client was
  // still owed an answer for becomes an orphaned-reply drop — counted, so
  // a connection dying with replies queued is visible, never a silent leak.
  for (const auto& [seq, bytes] : own.in_flight) {
    admitted_bytes_ -= bytes;
    if (seq > own.last_replied) ++counters_.orphaned_reply_drops;
  }
  for (const auto& [seq, env] : own.queue) {
    if (seq > own.last_replied) ++counters_.orphaned_reply_drops;
  }
  admitted_bytes_ -= own.queued_bytes;
  owned_.erase(it);
  // Ordered reads admitted for this client can no longer be answered; their
  // delivery-time lookup would just find a dead channel.
  for (auto rit = pending_reads_.begin(); rit != pending_reads_.end();) {
    if (rit->first.first == client_id) {
      ++counters_.orphaned_reply_drops;
      rit = pending_reads_.erase(rit);
    } else {
      ++rit;
    }
  }
}

void Gateway::refill(std::uint64_t client_id, OwnedSession& own,
                     const SessionState& sess) {
  while (own.in_flight.size() < cfg_.session_window && !own.queue.empty()) {
    auto [seq, envelope] = std::move(own.queue.front());
    own.queue.pop_front();
    own.queued_bytes -= envelope.size();
    if (seq <= sess.last_executed) {
      // Executed while queued (another replica's broadcast won); its reply
      // was already routed at that delivery. Just release the bytes.
      admitted_bytes_ -= envelope.size();
      continue;
    }
    // admit() re-adds the bytes; drop the queued share first.
    admitted_bytes_ -= envelope.size();
    admit(client_id, own, seq, std::move(envelope));
  }
}

void Gateway::on_delivery(const Delivery& d) {
  // Delivery is itself a drain scope: everything it enqueues (window
  // refills promoting queued envelopes, ordered-read completions) leaves in
  // one coalesced flush at the end instead of arming the backstop timer.
  const bool prev = in_drain_;
  in_drain_ = true;
  deliver_payload(d);
  in_drain_ = prev;
  if (!prev) flush_coalesced();
}

void Gateway::deliver_payload(const Delivery& d) {
  const std::uint8_t magic =
      (d.payload && !d.payload.empty()) ? *d.payload.data() : 0;
  try {
    switch (magic) {
      case kBatchEnvelopeMagic: {
        auto subs = parse_batch_envelope(d.payload);
        for (const Payload& sub : *subs) deliver_sub(sub, d);
        break;
      }
      case kEnvelopeMagic:
      case kReadEnvelopeMagic:
        deliver_sub(d.payload, d);
        break;
      case kLeaseEnvelopeMagic:
        apply_lease(*parse_lease_envelope(d.payload));
        break;
      default:
        // Not gateway traffic — a plain application broadcast.
        machine_.apply(d.origin, d.payload.span());
        return;
    }
  } catch (const CodecError& e) {
    ++counters_.rejected_malformed;
    FSR_WARN("gateway: malformed envelope from node %u dropped: %s",
             (unsigned)d.origin, e.what());
    return;
  }
  // Gateway traffic just delivered: if this replica leads the view, keep the
  // read lease warm.
  maybe_renew_lease();
}

void Gateway::deliver_sub(const Payload& envelope, const Delivery& d) {
  if (*envelope.data() == kReadEnvelopeMagic) {
    deliver_read(*parse_read_envelope(envelope), d);
    return;
  }
  deliver_command(*parse_envelope(envelope), d);
}

void Gateway::deliver_read(const GatewayReadCommand& rd, const Delivery& d) {
  // Deterministically read-only on every replica; only the replica that
  // admitted the read (the batch's origin) owes the client an answer, and
  // it answers from state that now reflects every write sequenced before
  // the read — that is what the ring round-trip bought.
  if (d.origin != member_.self()) return;
  auto it = pending_reads_.find({rd.client_id, rd.read_seq});
  if (it == pending_reads_.end()) return;
  SendReplyFn send = std::move(it->second);
  pending_reads_.erase(it);
  if (!send) return;
  ClientReply r;
  r.client_id = rd.client_id;
  r.session_seq = rd.read_seq;
  r.status = ClientStatus::kOk;
  r.reply = make_payload(machine_.query(rd.query.span()));
  ++counters_.replies_sent;
  send(r);
}

void Gateway::apply_lease(const LeaseGrant& grant) {
  if (grant.view_id != member_.view().id) return;  // stale grant: older view
  ++counters_.lease_grants_applied;
  lease_view_ = grant.view_id;
  lease_expiry_ = member_.transport().now() + grant.duration;
}

void Gateway::maybe_renew_lease() {
  if (cfg_.read_mode != GatewayReadMode::kLeased) return;
  if (!member_.in_group() || member_.flushing()) return;
  if (!member_.engine().is_leader()) return;
  const Time now = member_.transport().now();
  // Renew once less than half the lease remains; rate-limited so a delivery
  // burst doesn't spray grants before the first one comes back around.
  if (lease_view_ == member_.view().id && lease_expiry_ > now &&
      lease_expiry_ - now > cfg_.lease_duration / 2) {
    return;
  }
  if (last_grant_sent_ != 0 && now - last_grant_sent_ < cfg_.lease_duration / 4) {
    return;
  }
  last_grant_sent_ = now;
  ++counters_.lease_grants_sent;
  submit_(make_payload(
      encode_lease_envelope(member_.view().id, cfg_.lease_duration)));
}

void Gateway::deliver_command(const GatewayCommand& envelope_cmd, const Delivery& d) {
  const GatewayCommand* cmd = &envelope_cmd;
  auto& sess = sessions_[cmd->client_id];
  ClientStatus status = ClientStatus::kOk;
  bool duplicate = false;
  Payload result;

  // Sparse (sharded) sessions execute any seq above the horizon — the gaps
  // belong to sibling shards and in-order-per-shard admission guarantees
  // this shard's subsequence still arrives ascending. Strict mode keeps the
  // contiguity invariant.
  const bool next_in_session = cfg_.sparse_sessions
                                   ? cmd->session_seq > sess.last_executed
                                   : cmd->session_seq == sess.last_executed + 1;
  if (next_in_session) {
    result = make_payload(machine_.apply_with_reply(d.origin, cmd->command.span()));
    sess.last_executed = cmd->session_seq;
    sess.cache.push_back(CachedReply{cmd->session_seq, result});
    while (sess.cache.size() > cfg_.reply_cache) {
      sess.cache.pop_front();
      ++counters_.reply_cache_evictions;
    }
    ++counters_.commands_applied;
  } else if (cmd->session_seq <= sess.last_executed) {
    // The same command won the race twice (e.g. a crashed replica's
    // broadcast recovered by the view change plus the client's retry
    // through us). Deterministically suppressed on every replica.
    ++counters_.duplicate_applies_suppressed;
    duplicate = true;
    if (const CachedReply* c = cached(sess, cmd->session_seq)) result = c->reply;
  } else {
    // A session gap can only mean a buggy or byzantine client fabricating
    // seqs (admission never lets one through); never execute out of order.
    ++counters_.envelope_gaps;
    status = ClientStatus::kBadRequest;
  }

  // Response routing: if this replica owns the client's connection and the
  // client is owed an answer for this seq, this delivery resolves it —
  // regardless of which replica's broadcast got sequenced first.
  auto it = owned_.find(cmd->client_id);
  if (it != owned_.end()) {
    OwnedSession& own = it->second;
    if (cmd->session_seq > own.last_replied &&
        cmd->session_seq <= own.highest_admitted) {
      ClientReply r;
      r.client_id = cmd->client_id;
      r.session_seq = cmd->session_seq;
      r.status = status;
      r.duplicate = duplicate;
      r.reply = result;
      reply(own, r);
      own.last_replied = cmd->session_seq;
    }
    if (d.origin == member_.self()) {
      auto fit = own.in_flight.find(cmd->session_seq);
      if (fit != own.in_flight.end()) {
        admitted_bytes_ -= fit->second;
        own.in_flight.erase(fit);
      }
    }
    refill(cmd->client_id, own, sess);
  }
}

std::uint64_t Gateway::last_executed(std::uint64_t client_id) const {
  auto it = sessions_.find(client_id);
  return it == sessions_.end() ? 0 : it->second.last_executed;
}

}  // namespace fsr
