// Consistent-hash shard map: a pure, deterministic function from a state
// machine key to the GroupId (shard) whose ring orders commands on that key.
// Every replica constructs the same map from the shard count alone, so the
// routing decision needs no coordination — a client request for key K lands
// in the same shard no matter which replica's router handles it.
//
// The ring carries `points_per_shard` pseudo-random points per shard; a key
// hashes to a point on the ring and is owned by the next shard point
// clockwise. With a fixed shard count this is just a well-spread hash; the
// consistent-hash structure keeps the door open for shard counts that change
// between deployments without remapping the whole keyspace.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace fsr {

class ShardMap {
 public:
  explicit ShardMap(GroupId shards, std::uint32_t points_per_shard = 32)
      : shards_(shards == 0 ? 1 : shards) {
    ring_.reserve(static_cast<std::size_t>(shards_) * points_per_shard);
    for (GroupId g = 0; g < shards_; ++g) {
      for (std::uint32_t p = 0; p < points_per_shard; ++p) {
        ring_.emplace_back(mix((std::uint64_t{g} << 32) | p), g);
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }

  GroupId shards() const { return shards_; }

  /// The shard owning `key`. Pure function of (shard count, key bytes).
  GroupId shard_for_key(std::span<const std::uint8_t> key) const {
    if (shards_ == 1) return 0;
    auto it = std::lower_bound(ring_.begin(), ring_.end(),
                               std::make_pair(hash_key(key), GroupId{0}));
    if (it == ring_.end()) it = ring_.begin();  // clockwise wraparound
    return it->second;
  }

 private:
  /// splitmix64 finalizer: cheap, well-distributed, and fully specified —
  /// identical on every replica by construction.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static std::uint64_t hash_key(std::span<const std::uint8_t> key) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : key) h = (h ^ b) * 0x100000001b3ULL;
    return mix(h);
  }

  GroupId shards_;
  std::vector<std::pair<std::uint64_t, GroupId>> ring_;  ///< sorted points
};

}  // namespace fsr
