// Client-side library for the gateway service: a synchronous session client
// (exactly-once retries, endpoint failover) and a closed-loop multi-
// connection load generator for the gateway benchmark.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gateway/tcp_gateway.h"

namespace fsr {

/// One client session over TCP. Blocking, single-threaded: call() sends one
/// command and waits for its reply, retrying through timeouts, rejections
/// and connection resets — including reconnecting to a different replica —
/// while the session protocol guarantees the command executes exactly once.
class GatewayClient {
 public:
  struct Options {
    std::uint64_t client_id = 1;
    std::vector<GatewayEndpoint> endpoints;
    std::size_t start_index = 0;        ///< initial endpoint (spread load)
    Time recv_timeout = kSecond;        ///< per-attempt reply wait
    std::size_t max_attempts = 30;      ///< per command
    Time reject_backoff = 5 * kMillisecond;  ///< wait after backpressure
  };

  struct Result {
    bool ok = false;  ///< a definitive reply arrived (status tells which)
    ClientStatus status = ClientStatus::kBadRequest;
    bool duplicate = false;  ///< served from the replicated reply cache
    Bytes reply;
    std::size_t attempts = 0;
  };

  explicit GatewayClient(Options opt);
  ~GatewayClient();

  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  /// Execute one replicated command (blocks until a definitive reply or
  /// attempts run out).
  Result call(const Bytes& command);

  /// Local read on the currently connected replica (no broadcast).
  std::optional<Bytes> read(const Bytes& query);

  std::size_t reconnects() const { return reconnects_; }
  std::uint64_t duplicates_observed() const { return duplicates_; }
  std::size_t endpoint_index() const { return endpoint_; }

 private:
  bool ensure_connected();
  void disconnect();
  void next_endpoint();
  /// Wait for the reply matching (client_id, seq); nullopt on timeout or
  /// connection loss.
  std::optional<ClientReply> await_reply(std::uint64_t seq);

  Options opt_;
  int fd_ = -1;
  std::size_t endpoint_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_read_seq_ = std::uint64_t{1} << 63;  ///< disjoint from commands
  std::size_t reconnects_ = 0;
  std::uint64_t duplicates_ = 0;
};

/// Closed-loop load generator. Two modes:
///
///  - Legacy (`connections == 0`): one thread + one connection per client,
///    each issuing `requests_per_client` PUTs back to back (one outstanding
///    command per session).
///
///  - Multiplexed (`connections > 0`): that many TCP connections (one thread
///    each), sessions spread round-robin across them, and every session
///    keeping up to `pipeline` commands outstanding. All due requests on a
///    connection are packed into multi-message frames, so a thousand
///    simulated clients cost a handful of sockets and threads — this is the
///    mode the 64/256/1024-client benchmark rows use.
struct DriverOptions {
  std::vector<GatewayEndpoint> endpoints;
  std::size_t clients = 4;
  std::size_t requests_per_client = 1000;
  std::size_t value_bytes = 64;
  std::uint64_t first_client_id = 1000;
  Time recv_timeout = kSecond;
  std::size_t max_attempts = 30;

  /// Multiplexed mode (0 = legacy one-connection-per-client).
  std::size_t connections = 0;
  /// Outstanding commands per session in multiplexed mode. Keep at or below
  /// the gateway's session_window + session_queue or steady-state traffic
  /// rejects on every fill.
  std::size_t pipeline = 8;
  /// Fraction of each session's ops issued as READs instead of PUTs
  /// (deterministic per-session interleave; multiplexed mode only).
  double read_fraction = 0.0;
};

struct DriverReport {
  std::uint64_t requests = 0;   ///< definitive kOk replies (commands + reads)
  std::uint64_t reads = 0;      ///< kOk read replies (subset of requests)
  std::uint64_t failures = 0;   ///< gave up or non-kOk definitive status
  std::uint64_t duplicates = 0;  ///< replies served from the dedupe cache
  std::uint64_t reconnects = 0;
  double elapsed_sec = 0;
  double requests_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;
};

DriverReport run_client_driver(const DriverOptions& opt);

}  // namespace fsr
