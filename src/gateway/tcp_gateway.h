// Client-facing TCP service for the gateway: each replica runs a
// GatewayServer fronting its Gateway with a small fleet of epoll event-loop
// threads. Every loop owns a shard of the connections (edge-triggered
// nonblocking reads and writes, per-connection outbound queues with
// partial-write resume) and marshals decoded client messages onto the
// replica's transport I/O thread in per-drain batches — the Gateway itself
// stays single-threaded, exactly like the protocol stack beneath it, and
// each drain batch ends with one flush_coalesced() so requests that arrived
// together ride one broadcast envelope. Replies route back to the owning
// loop over a mutex+eventfd inbox and are batched into multi-message client
// frames per connection.
//
// Thread-safety is compile-time: each loop's connection shard is guarded by
// that loop's ThreadRole capability; the only cross-thread surfaces are the
// inbox (Mutex) and the eventfd wake.
//
// TcpGatewayCluster assembles the whole replicated service over real
// sockets: TcpCluster (n GroupMembers) + per-node KvStore + Gateway +
// GatewayServer, with gateway broadcasts registered with the invariant
// checker via TcpCluster::submit_from_io.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "app/kv_store.h"
#include "common/sync.h"
#include "gateway/gateway.h"
#include "gateway/shard_router.h"
#include "harness/tcp_cluster.h"

namespace fsr {

/// Client frames on the wire are a 4-byte little-endian length followed by
/// the encoded ClientFrame. Anything larger than this is treated as a
/// hostile length field and drops the connection.
constexpr std::size_t kMaxClientFrameBytes = 16u << 20;

/// Blocking frame I/O over a connected socket, used by the client driver and
/// tests. write returns false on any socket error. read returns nullopt on
/// EOF, socket error, or timeout (errno distinguishes; a decoded frame
/// aliases a fresh shared buffer, so Payload views stay valid).
bool gateway_write_frame(int fd, const ClientFrame& frame);
std::optional<ClientFrame> gateway_read_frame(int fd);

/// Length-prefix + encode in one buffer (the event loops' outbound unit).
Bytes encode_client_frame_with_prefix(const ClientFrame& frame);

struct GatewayServerConfig {
  /// Event-loop threads per server. Connections are sharded round-robin at
  /// accept time and never migrate.
  std::size_t event_loops = 2;
  /// Per-connection cap on queued outbound bytes. A client that stops
  /// reading (slow loris) hits the cap and is disconnected instead of
  /// holding reply memory hostage.
  std::size_t max_outbox_bytes = 4u << 20;
};

class GatewayServer {
 public:
  /// `io` is the replica's transport (its I/O thread runs the router and
  /// every shard gateway); `router` must outlive the server. Single-shard
  /// deployments front their one Gateway with a one-entry ShardRouter.
  GatewayServer(TcpTransport& io, ShardRouter& router, GatewayServerConfig cfg = {});
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// Bind (port 0 = ephemeral), listen, and start the event loops.
  void start(std::uint16_t port = 0);
  void stop();
  std::uint16_t port() const { return port_; }

  /// Connections currently open across all loops (cross-thread snapshot).
  std::size_t open_connections() const;

 private:
  /// One epoll shard: a thread, its wake eventfd, and the connections it
  /// owns. Loop state is a compile-time capability of the loop's role; the
  /// inbox is the only cross-thread surface.
  class EventLoop {
   public:
    EventLoop(GatewayServer& server, std::size_t index);
    ~EventLoop();

    void start();
    /// Ask the loop to exit and join it (idempotent).
    void stop_join();

    /// Cross-thread: hand a freshly accepted socket to this shard.
    void adopt_fd(int fd, std::uint64_t serial);
    /// Cross-thread: queue a reply for the connection with this serial
    /// (dropped if it died) — called from the transport I/O thread.
    void queue_reply(std::uint64_t serial, const ClientReply& r);

    std::size_t open_connections() const;

   private:
    struct Conn {
      int fd = -1;
      std::uint64_t serial = 0;
      ChunkBuffer rx;
      std::deque<Bytes> outbox;
      std::size_t out_off = 0;       ///< bytes of outbox.front() already sent
      std::size_t outbox_bytes = 0;  ///< total queued outbound bytes
      std::set<std::uint64_t> clients_seen;
    };

    void run();
    void wake();
    void drain_inbox() FSR_REQUIRES(role_);
    void accept_ready() FSR_REQUIRES(role_);
    void add_conn(int fd, std::uint64_t serial) FSR_REQUIRES(role_);
    void handle_readable(Conn& c) FSR_REQUIRES(role_);
    void handle_writable(Conn& c) FSR_REQUIRES(role_);
    /// Parse every complete frame in the rx buffer and post the decoded
    /// messages to the gateway as ONE I/O-thread closure per drain.
    bool parse_frames(Conn& c) FSR_REQUIRES(role_);
    void enqueue_frame(Conn& c, Bytes frame) FSR_REQUIRES(role_);
    void flush_replies(std::vector<std::pair<std::uint64_t, ClientReply>> replies)
        FSR_REQUIRES(role_);
    void close_conn(Conn& c, bool notify_gateway) FSR_REQUIRES(role_);

    GatewayServer& server_;
    const std::size_t index_;
    ThreadRole role_;
    int epoll_fd_ = -1;
    int wake_fd_ = -1;
    Thread thread_;

    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_
        FSR_GUARDED_BY(role_);
    bool stop_requested_ FSR_GUARDED_BY(role_) = false;

    mutable Mutex inbox_mutex_;
    std::vector<std::function<void()>> tasks_ FSR_GUARDED_BY(inbox_mutex_);
    std::vector<std::pair<std::uint64_t, ClientReply>> pending_replies_
        FSR_GUARDED_BY(inbox_mutex_);
    bool wake_pending_ FSR_GUARDED_BY(inbox_mutex_) = false;
    std::size_t open_conns_published_ FSR_GUARDED_BY(inbox_mutex_) = 0;
  };

  friend class EventLoop;

  TcpTransport& io_;
  ShardRouter& router_;
  GatewayServerConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> next_serial_{1};
  std::atomic<std::size_t> next_loop_{0};
  /// shared_ptr: reply closures posted to the transport capture their loop,
  /// so a loop outlives any reply still in flight after stop().
  std::vector<std::shared_ptr<EventLoop>> loops_;
};

/// Client connection target.
struct GatewayEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpGatewayClusterConfig {
  std::size_t n = 3;
  GroupConfig group;
  GatewayConfig gateway;
  GatewayServerConfig server;
  /// Independent ordering domains (shards) per node, each a full
  /// Gateway + ring behind the node's ShardRouter; with more than one,
  /// gateways run sparse_sessions mode.
  GroupId shards = 1;
};

/// The full replicated KV service over real TCP: n replicas, each serving
/// clients through its own GatewayServer port.
class TcpGatewayCluster {
 public:
  explicit TcpGatewayCluster(TcpGatewayClusterConfig config = {});
  ~TcpGatewayCluster();

  TcpGatewayCluster(const TcpGatewayCluster&) = delete;
  TcpGatewayCluster& operator=(const TcpGatewayCluster&) = delete;

  std::size_t size() const { return stores_.size(); }
  std::vector<GatewayEndpoint> endpoints() const;
  TcpCluster& cluster() { return *cluster_; }

  /// Hard-stop a replica: its client connections reset (clients fail over)
  /// and its peers detect the crash.
  void crash(NodeId node);
  bool alive(NodeId node) const { return cluster_->alive(node); }

  GroupId shards() const { return shards_; }

  /// Snapshots taken on each live node's I/O thread: across every shard, or
  /// one shard's slice across nodes.
  GatewayCounters gateway_counters() const;
  GatewayCounters gateway_counters(GroupId shard) const;
  /// Live admission gauge (in-flight + queued envelope bytes) summed over
  /// the live nodes; the reconnect-storm test probes this mid-run.
  std::uint64_t total_admitted_bytes() const;
  /// Live owned-session bindings summed over the live nodes.
  std::uint64_t total_owned_sessions() const;
  std::vector<std::uint64_t> fingerprints() const;
  std::uint64_t total_failed_cas() const;
  std::uint64_t total_applied() const;

  /// Raw per-node access for post-quiesce assertions in tests.
  KvStore& store(NodeId node) { return *stores_[node]; }
  Gateway& gateway(NodeId node) { return *gateways_[node][0]; }
  Gateway& gateway(NodeId node, GroupId shard) { return *gateways_[node][shard]; }
  ShardRouter& router(NodeId node) { return *routers_[node]; }
  GatewayServer& server(NodeId node) { return *servers_[node]; }

  std::string check_invariants() const { return cluster_->check_invariants(); }

 private:
  std::unique_ptr<TcpCluster> cluster_;
  GroupId shards_ = 1;
  std::vector<std::unique_ptr<KvStore>> stores_;
  std::vector<std::vector<std::unique_ptr<Gateway>>> gateways_;  ///< [node][shard]
  std::vector<std::unique_ptr<ShardRouter>> routers_;            ///< [node]
  std::vector<std::unique_ptr<GatewayServer>> servers_;
};

}  // namespace fsr
