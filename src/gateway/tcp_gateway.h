// Client-facing TCP service for the gateway: each replica runs a
// GatewayServer that accepts client connections, decodes client frames
// (u32-length-prefixed, see proto/client_wire.h) and marshals every message
// onto the replica's transport I/O thread — the Gateway itself stays
// single-threaded, exactly like the protocol stack beneath it. Replies are
// written back from the I/O thread on the connection that owns the client.
//
// TcpGatewayCluster assembles the whole replicated service over real
// sockets: TcpCluster (n GroupMembers) + per-node KvStore + Gateway +
// GatewayServer, with gateway broadcasts registered with the invariant
// checker via TcpCluster::submit_from_io.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "app/kv_store.h"
#include "common/sync.h"
#include "gateway/gateway.h"
#include "harness/tcp_cluster.h"

namespace fsr {

/// Client frames on the wire are a 4-byte little-endian length followed by
/// the encoded ClientFrame. Anything larger than this is treated as a
/// hostile length field and drops the connection.
constexpr std::size_t kMaxClientFrameBytes = 16u << 20;

/// Blocking frame I/O over a connected socket, shared by the server and the
/// client driver. write returns false on any socket error. read returns
/// nullopt on EOF, socket error, or timeout (errno distinguishes; a decoded
/// frame aliases a fresh shared buffer, so Payload views stay valid).
bool gateway_write_frame(int fd, const ClientFrame& frame);
std::optional<ClientFrame> gateway_read_frame(int fd);

class GatewayServer {
 public:
  /// `io` is the replica's transport (its I/O thread runs the gateway);
  /// `gateway` must outlive the server.
  GatewayServer(TcpTransport& io, Gateway& gateway);
  ~GatewayServer();

  GatewayServer(const GatewayServer&) = delete;
  GatewayServer& operator=(const GatewayServer&) = delete;

  /// Bind (port 0 = ephemeral), listen, and start the accept thread.
  void start(std::uint16_t port = 0);
  void stop();
  std::uint16_t port() const { return port_; }

 private:
  struct ClientConn {
    /// Set once at accept, read by the reader thread without write_mutex by
    /// design: the reader owns the read side of the socket. write_mutex only
    /// serializes the *write* stream (replies from the I/O thread vs. the
    /// close in stop()/reader teardown).
    int fd = -1;
    std::uint64_t serial = 0;
    Mutex write_mutex;
    std::atomic<bool> open{true};
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<ClientConn> conn);

  TcpTransport& io_;
  Gateway& gateway_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> next_serial_{1};
  Thread accept_thread_;
  Mutex conns_mutex_;
  std::vector<std::shared_ptr<ClientConn>> conns_ FSR_GUARDED_BY(conns_mutex_);
  std::vector<Thread> readers_ FSR_GUARDED_BY(conns_mutex_);
};

/// Client connection target.
struct GatewayEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpGatewayClusterConfig {
  std::size_t n = 3;
  GroupConfig group;
  GatewayConfig gateway;
};

/// The full replicated KV service over real TCP: n replicas, each serving
/// clients through its own GatewayServer port.
class TcpGatewayCluster {
 public:
  explicit TcpGatewayCluster(TcpGatewayClusterConfig config = {});
  ~TcpGatewayCluster();

  TcpGatewayCluster(const TcpGatewayCluster&) = delete;
  TcpGatewayCluster& operator=(const TcpGatewayCluster&) = delete;

  std::size_t size() const { return stores_.size(); }
  std::vector<GatewayEndpoint> endpoints() const;
  TcpCluster& cluster() { return *cluster_; }

  /// Hard-stop a replica: its client connections reset (clients fail over)
  /// and its peers detect the crash.
  void crash(NodeId node);
  bool alive(NodeId node) const { return cluster_->alive(node); }

  /// Snapshots taken on each live node's I/O thread.
  GatewayCounters gateway_counters() const;
  std::vector<std::uint64_t> fingerprints() const;
  std::uint64_t total_failed_cas() const;
  std::uint64_t total_applied() const;

  /// Raw per-node access for post-quiesce assertions in tests.
  KvStore& store(NodeId node) { return *stores_[node]; }
  Gateway& gateway(NodeId node) { return *gateways_[node]; }

  std::string check_invariants() const { return cluster_->check_invariants(); }

 private:
  std::unique_ptr<TcpCluster> cluster_;
  std::vector<std::unique_ptr<KvStore>> stores_;
  std::vector<std::unique_ptr<Gateway>> gateways_;
  std::vector<std::unique_ptr<GatewayServer>> servers_;
};

}  // namespace fsr
