// The client gateway: the cluster's front door for state-machine
// replication (the application the paper motivates in §1). One Gateway runs
// per replica, on that replica's single-threaded event loop (simulator
// event or TCP I/O thread), layered on GroupMember + StateMachine.
//
// Responsibilities:
//   * Sessions & exactly-once execution. Client commands travel the ring as
//     gateway envelopes {client_id, session_seq, command}. The session
//     table (last executed seq + reply cache per client) is updated ONLY at
//     TO-delivery time — a deterministic function of the delivery stream —
//     so every replica agrees on it without any extra protocol: the session
//     state is replicated *through* the broadcast itself. A duplicate
//     retry, including one redirected to a different replica after a crash,
//     is either answered from the reply cache immediately or suppressed at
//     delivery and answered from the cache then. Each command applies
//     exactly once on every replica.
//   * Response routing. The replica that owns the client's connection (the
//     one that admitted the request) replies when the command's delivery
//     resolves it — whichever replica's broadcast won the race.
//   * Admission control. Per-session in-flight window with a bounded local
//     queue behind it, plus a global admitted-bytes budget across sessions.
//     Every outcome is an explicit reply (queued requests reply at
//     delivery; rejections reply immediately) — a request is never dropped
//     silently — so clients backpressure instead of the engine OOMing.
//   * Zero-copy admission. The envelope Payload (a view into the client
//     connection's receive buffer) is broadcast by reference; client bytes
//     are never re-copied on their way into the ring.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>

#include "app/state_machine.h"
#include "common/sync.h"
#include "proto/client_codec.h"
#include "proto/client_wire.h"
#include "vsc/group.h"

namespace fsr {

/// How Gateway::on_read answers queries.
enum class GatewayReadMode : std::uint8_t {
  /// Always answer from the local applied state without broadcasting (the
  /// paper's footnote 1: reads need not be totally ordered). The default —
  /// cheapest, but a lagging replica can answer from stale state.
  kLocal,
  /// Answer locally only under a valid sequencer lease (granted by the
  /// leader over the TO-stream, conservatively invalidated on view change
  /// or flush); otherwise fall back to an ordered read that round-trips the
  /// ring. Linearizable reads at local-read cost while the lease is warm.
  kLeased,
};

struct GatewayConfig {
  /// Own commands per session admitted into the ring at once. Beyond it
  /// requests queue locally (bounded by `session_queue`), past that they
  /// are rejected with kRejectedWindow.
  std::size_t session_window = 8;
  std::size_t session_queue = 32;

  /// Commands larger than this are rejected outright (kBadRequest).
  std::size_t max_command_bytes = 1 << 20;

  /// Global budget on admitted (in-flight + queued) envelope bytes across
  /// all sessions this replica owns; beyond it requests are rejected with
  /// kRejectedBytes until deliveries drain the backlog.
  std::size_t admitted_bytes_budget = 8 << 20;

  /// Executed replies cached per session for duplicate retries. Must be
  /// >= session_window or a retry burst can outrun the cache.
  std::size_t reply_cache = 16;

  /// Request coalescing: admitted envelopes accumulate into one batch
  /// payload (kBatchEnvelopeMagic) per broadcast, amortizing the ring's
  /// per-broadcast cost over every command in the batch — the inverse of
  /// the engine's segmentation. A batch flushes when it reaches
  /// `coalesce_max_envelopes` or `coalesce_max_bytes`, when the harness
  /// calls flush_coalesced() at the end of an event batch, or at latest
  /// `coalesce_flush_delay` after its first envelope (the ack_flush_delay
  /// idiom). Off: every envelope is its own broadcast (the ablation knob).
  bool coalesce = true;
  std::size_t coalesce_max_envelopes = 64;
  /// Kept under the engine's segment_size so a batch rides one segment.
  std::size_t coalesce_max_bytes = 7 << 10;
  Time coalesce_flush_delay = 200 * kMicrosecond;

  /// Sharded deployments: this gateway is one shard behind a ShardRouter
  /// and sees only the subsequence of each session's seqs whose keys hash
  /// here. Admission accepts any seq above the session's horizon instead of
  /// requiring contiguity, and delivery executes any seq above
  /// last_executed. In-order-per-shard is preserved by the rejected-tail
  /// gate: after any backpressure rejection, every higher seq bounces too
  /// until the client resends the rejected seq (drivers resend the whole
  /// tail in order), so an admitted seq is never overtaken by a lower
  /// unadmitted one. Strict (default) mode additionally rejects fabricated
  /// far-ahead seqs; sparse mode cannot tell those from legitimate shard
  /// gaps and admits them — they execute as ordinary commands, burning only
  /// the client's own seq space.
  bool sparse_sessions = false;

  GatewayReadMode read_mode = GatewayReadMode::kLocal;
  /// Lease lifetime from grant *delivery*. Safety rule: must stay below the
  /// group's failure-detection + flush window, so any lease granted in an
  /// old view has expired by the time a new view can commit writes (see
  /// DESIGN.md §12). Replicas that install the new view invalidate
  /// immediately via the grant's view id.
  Time lease_duration = 50 * kMillisecond;
  /// Cap on ordered reads in flight per replica (lease-cold fallback);
  /// beyond it reads are rejected with kRejectedWindow and retried.
  std::size_t max_pending_reads = 1024;
};

/// Health/behavior counters, aggregated by the harnesses alongside
/// TransportCounters and EngineCounters.
struct GatewayCounters {
  std::uint64_t requests = 0;         ///< client requests received
  std::uint64_t reads = 0;            ///< local read queries answered
  std::uint64_t admitted = 0;         ///< envelopes broadcast into the ring
  std::uint64_t queued = 0;           ///< requests parked behind the window
  std::uint64_t duplicate_hits = 0;   ///< retries answered from cache / already pending
  std::uint64_t duplicate_applies_suppressed = 0;  ///< deliveries not re-applied
  std::uint64_t rejected_window = 0;
  std::uint64_t rejected_bytes = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_ahead = 0;  ///< seqs past this replica's horizon (failover lag or fabrication)
  std::uint64_t envelope_gaps = 0;    ///< out-of-order envelope deliveries dropped
  std::uint64_t commands_applied = 0; ///< envelope commands executed here
  std::uint64_t replies_sent = 0;
  std::uint64_t reply_cache_evictions = 0;
  std::uint64_t admitted_bytes_total = 0;  ///< cumulative envelope bytes admitted
  std::uint64_t coalesced_envelopes = 0;  ///< envelopes routed through batches
  std::uint64_t coalesce_flushes = 0;     ///< batch payloads broadcast
  std::uint64_t reads_local = 0;    ///< reads answered from local state
  std::uint64_t reads_ordered = 0;  ///< lease-cold reads sent around the ring
  std::uint64_t lease_grants_sent = 0;     ///< grants this (leader) broadcast
  std::uint64_t lease_grants_applied = 0;  ///< current-view grants delivered
  std::uint64_t orphaned_reply_drops = 0;  ///< replies owed to a dead connection

  GatewayCounters& operator+=(const GatewayCounters& o) {
    requests += o.requests;
    reads += o.reads;
    admitted += o.admitted;
    queued += o.queued;
    duplicate_hits += o.duplicate_hits;
    duplicate_applies_suppressed += o.duplicate_applies_suppressed;
    rejected_window += o.rejected_window;
    rejected_bytes += o.rejected_bytes;
    rejected_malformed += o.rejected_malformed;
    rejected_ahead += o.rejected_ahead;
    envelope_gaps += o.envelope_gaps;
    commands_applied += o.commands_applied;
    replies_sent += o.replies_sent;
    reply_cache_evictions += o.reply_cache_evictions;
    admitted_bytes_total += o.admitted_bytes_total;
    coalesced_envelopes += o.coalesced_envelopes;
    coalesce_flushes += o.coalesce_flushes;
    reads_local += o.reads_local;
    reads_ordered += o.reads_ordered;
    lease_grants_sent += o.lease_grants_sent;
    lease_grants_applied += o.lease_grants_applied;
    orphaned_reply_drops += o.orphaned_reply_drops;
    return *this;
  }
};

class Gateway {
 public:
  using SendReplyFn = std::function<void(const ClientReply&)>;
  /// How admitted envelopes enter the ring. Defaults to
  /// member.broadcast(Payload); harnesses override it to register the
  /// submission with their invariant checker first.
  using SubmitFn = std::function<void(Payload)>;

  Gateway(GroupMember& member, StateMachine& machine, GatewayConfig config,
          SubmitFn submit = {});

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// The capability standing for "this replica's event thread" (the
  /// simulator's event loop or the TCP transport's I/O thread). Every entry
  /// point requires it; callers reaching the gateway from a marshalled
  /// closure adopt it with ThreadRoleRegion(gw.role()).
  ThreadRole& role() FSR_RETURN_CAPABILITY(role_) { return role_; }

  // --- front-end API (call on this replica's event thread) ---

  /// Bind (or re-bind after reconnect) a client's reply channel.
  /// `conn_serial` identifies the connection so a stale disconnect cannot
  /// tear down a newer binding. With `send_ack` false the binding happens
  /// but no hello ack goes out — the ShardRouter binds every shard that
  /// way and sends one merged ack itself.
  void on_hello(const ClientHello& hello, SendReplyFn send,
                std::uint64_t conn_serial = 0, bool send_ack = true)
      FSR_REQUIRES(role_);

  /// One replicated command. `send` refreshes the session's reply channel.
  void on_request(const ClientRequest& req, SendReplyFn send,
                  std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);

  /// Read-only query. In kLocal mode (and in kLeased mode under a valid
  /// lease) answered immediately from the local state machine; lease-cold
  /// kLeased reads are broadcast as ordered reads and answered at delivery.
  void on_read(const ClientRead& read, const SendReplyFn& send) FSR_REQUIRES(role_);

  /// Flush the pending coalescing batch now (no-op when empty).
  void flush_coalesced() FSR_REQUIRES(role_);

  /// Drain scope for event-driven front-ends: bracket a burst of
  /// on_hello/on_request/on_read calls with begin_drain()/end_drain() and
  /// the whole burst leaves in one coalesced broadcast at end_drain(),
  /// without ever arming the per-gateway backstop timer (which costs real
  /// throughput on the TCP I/O thread). Enqueues outside any drain scope —
  /// e.g. the simulator calling entry points directly — fall back to the
  /// coalesce_flush_delay timer. on_delivery brackets itself.
  void begin_drain() FSR_REQUIRES(role_);
  void end_drain() FSR_REQUIRES(role_);

  /// The client's connection died; tears down the owned binding (the
  /// session's replicated state survives for the client's next connection,
  /// on any replica).
  void on_client_disconnect(std::uint64_t client_id,
                            std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);

  // --- delivery wiring (every TO-delivery of this node flows through) ---

  /// Applies envelope commands exactly once, routes replies for sessions
  /// this replica owns, refills admission windows. Non-envelope payloads
  /// are applied to the state machine unchanged (plain broadcasts coexist
  /// with gateway traffic).
  void on_delivery(const Delivery& d) FSR_REQUIRES(role_);

  // --- introspection (same thread contract as the entry points) ---

  const GatewayCounters& counters() const FSR_REQUIRES(role_) { return counters_; }
  std::size_t sessions() const FSR_REQUIRES(role_) { return sessions_.size(); }
  std::size_t owned_sessions() const FSR_REQUIRES(role_) { return owned_.size(); }
  std::size_t admitted_bytes() const FSR_REQUIRES(role_) { return admitted_bytes_; }
  /// Total cached replies across sessions; bounded by
  /// sessions() * cfg.reply_cache (the chaos oracle asserts exactly this
  /// under duplicate floods).
  std::size_t reply_cache_entries() const FSR_REQUIRES(role_) {
    std::size_t total = 0;
    for (const auto& [id, sess] : sessions_) total += sess.cache.size();
    return total;
  }
  /// Last executed session_seq for a client (0 = unknown client).
  std::uint64_t last_executed(std::uint64_t client_id) const FSR_REQUIRES(role_);

  /// Whether this replica may currently serve reads from local state in
  /// kLeased mode: the last delivered grant names the installed view, no
  /// flush is in progress, and the lease has not timed out.
  bool lease_valid() const FSR_REQUIRES(role_);
  std::size_t pending_ordered_reads() const FSR_REQUIRES(role_) {
    return pending_reads_.size();
  }

 private:
  /// Replicated per-session state: advanced only by TO-deliveries, so all
  /// replicas agree on it. The cache keeps the most recent executed
  /// replies for duplicate retries.
  struct CachedReply {
    std::uint64_t seq = 0;
    Payload reply;
  };
  struct SessionState {
    std::uint64_t last_executed = 0;
    std::deque<CachedReply> cache;
  };

  /// Local state for sessions whose client connection this replica owns.
  struct OwnedSession {
    SendReplyFn send;
    std::uint64_t conn_serial = 0;
    std::uint64_t highest_admitted = 0;  ///< max seq admitted or queued here
    std::uint64_t last_replied = 0;      ///< max seq answered at delivery time
    std::map<std::uint64_t, std::size_t> in_flight;  ///< seq -> envelope bytes
    std::deque<std::pair<std::uint64_t, Payload>> queue;  ///< (seq, envelope)
    std::size_t queued_bytes = 0;
    /// Highest seq bounced by backpressure (window/bytes), and with what.
    /// A pipelined burst keeps arriving above `expected` after the first
    /// rejection; those are the same backpressure event, not a client bug,
    /// and get the same status. Reset on the next successful admit/queue.
    std::uint64_t rejected_tail = 0;
    ClientStatus rejected_status = ClientStatus::kOk;
  };

  void reply(OwnedSession& own, const ClientReply& r) FSR_REQUIRES(role_);
  void admit(std::uint64_t client_id, OwnedSession& own, std::uint64_t seq,
             Payload envelope) FSR_REQUIRES(role_);
  void refill(std::uint64_t client_id, OwnedSession& own,
              const SessionState& sess) FSR_REQUIRES(role_);
  const CachedReply* cached(const SessionState& sess, std::uint64_t seq) const
      FSR_REQUIRES(role_);

  /// Route an envelope (command or ordered read) into the ring, through the
  /// coalescing batch when enabled.
  void enqueue_envelope(const Payload& envelope) FSR_REQUIRES(role_);
  void arm_flush_timer() FSR_REQUIRES(role_);

  void deliver_payload(const Delivery& d) FSR_REQUIRES(role_);
  void deliver_sub(const Payload& envelope, const Delivery& d) FSR_REQUIRES(role_);
  void deliver_command(const GatewayCommand& cmd, const Delivery& d)
      FSR_REQUIRES(role_);
  void deliver_read(const GatewayReadCommand& rd, const Delivery& d)
      FSR_REQUIRES(role_);
  void apply_lease(const LeaseGrant& grant) FSR_REQUIRES(role_);
  /// Leader-side, traffic-driven lease renewal: called after gateway
  /// deliveries; broadcasts a fresh grant when less than half the lease
  /// remains. No periodic timer — an idle group lets its lease lapse and the
  /// first lease-cold ordered read restarts the cycle.
  void maybe_renew_lease() FSR_REQUIRES(role_);

  GroupMember& member_;
  StateMachine& machine_;
  GatewayConfig cfg_;
  SubmitFn submit_;

  ThreadRole role_{"Gateway::event"};

  std::unordered_map<std::uint64_t, SessionState> sessions_ FSR_GUARDED_BY(role_);
  std::unordered_map<std::uint64_t, OwnedSession> owned_ FSR_GUARDED_BY(role_);
  std::size_t admitted_bytes_ FSR_GUARDED_BY(role_) = 0;  ///< in-flight + queued bytes

  EnvelopeBatch batch_ FSR_GUARDED_BY(role_);
  bool flush_timer_armed_ FSR_GUARDED_BY(role_) = false;
  bool in_drain_ FSR_GUARDED_BY(role_) = false;

  /// Ordered reads this replica admitted, answered when their envelope
  /// delivers back (keyed client_id, read_seq). Entries self-clean at
  /// delivery; disconnect drops a client's entries as orphaned.
  std::map<std::pair<std::uint64_t, std::uint64_t>, SendReplyFn> pending_reads_
      FSR_GUARDED_BY(role_);

  ViewId lease_view_ FSR_GUARDED_BY(role_) = 0;
  Time lease_expiry_ FSR_GUARDED_BY(role_) = 0;
  Time last_grant_sent_ FSR_GUARDED_BY(role_) = 0;

  GatewayCounters counters_ FSR_GUARDED_BY(role_);
};

}  // namespace fsr
