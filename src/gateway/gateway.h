// The client gateway: the cluster's front door for state-machine
// replication (the application the paper motivates in §1). One Gateway runs
// per replica, on that replica's single-threaded event loop (simulator
// event or TCP I/O thread), layered on GroupMember + StateMachine.
//
// Responsibilities:
//   * Sessions & exactly-once execution. Client commands travel the ring as
//     gateway envelopes {client_id, session_seq, command}. The session
//     table (last executed seq + reply cache per client) is updated ONLY at
//     TO-delivery time — a deterministic function of the delivery stream —
//     so every replica agrees on it without any extra protocol: the session
//     state is replicated *through* the broadcast itself. A duplicate
//     retry, including one redirected to a different replica after a crash,
//     is either answered from the reply cache immediately or suppressed at
//     delivery and answered from the cache then. Each command applies
//     exactly once on every replica.
//   * Response routing. The replica that owns the client's connection (the
//     one that admitted the request) replies when the command's delivery
//     resolves it — whichever replica's broadcast won the race.
//   * Admission control. Per-session in-flight window with a bounded local
//     queue behind it, plus a global admitted-bytes budget across sessions.
//     Every outcome is an explicit reply (queued requests reply at
//     delivery; rejections reply immediately) — a request is never dropped
//     silently — so clients backpressure instead of the engine OOMing.
//   * Zero-copy admission. The envelope Payload (a view into the client
//     connection's receive buffer) is broadcast by reference; client bytes
//     are never re-copied on their way into the ring.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <unordered_map>

#include "app/state_machine.h"
#include "common/sync.h"
#include "proto/client_codec.h"
#include "proto/client_wire.h"
#include "vsc/group.h"

namespace fsr {

struct GatewayConfig {
  /// Own commands per session admitted into the ring at once. Beyond it
  /// requests queue locally (bounded by `session_queue`), past that they
  /// are rejected with kRejectedWindow.
  std::size_t session_window = 8;
  std::size_t session_queue = 32;

  /// Commands larger than this are rejected outright (kBadRequest).
  std::size_t max_command_bytes = 1 << 20;

  /// Global budget on admitted (in-flight + queued) envelope bytes across
  /// all sessions this replica owns; beyond it requests are rejected with
  /// kRejectedBytes until deliveries drain the backlog.
  std::size_t admitted_bytes_budget = 8 << 20;

  /// Executed replies cached per session for duplicate retries. Must be
  /// >= session_window or a retry burst can outrun the cache.
  std::size_t reply_cache = 16;
};

/// Health/behavior counters, aggregated by the harnesses alongside
/// TransportCounters and EngineCounters.
struct GatewayCounters {
  std::uint64_t requests = 0;         ///< client requests received
  std::uint64_t reads = 0;            ///< local read queries answered
  std::uint64_t admitted = 0;         ///< envelopes broadcast into the ring
  std::uint64_t queued = 0;           ///< requests parked behind the window
  std::uint64_t duplicate_hits = 0;   ///< retries answered from cache / already pending
  std::uint64_t duplicate_applies_suppressed = 0;  ///< deliveries not re-applied
  std::uint64_t rejected_window = 0;
  std::uint64_t rejected_bytes = 0;
  std::uint64_t rejected_malformed = 0;
  std::uint64_t rejected_ahead = 0;  ///< seqs past this replica's horizon (failover lag or fabrication)
  std::uint64_t envelope_gaps = 0;    ///< out-of-order envelope deliveries dropped
  std::uint64_t commands_applied = 0; ///< envelope commands executed here
  std::uint64_t replies_sent = 0;
  std::uint64_t reply_cache_evictions = 0;
  std::uint64_t admitted_bytes_total = 0;  ///< cumulative envelope bytes admitted

  GatewayCounters& operator+=(const GatewayCounters& o) {
    requests += o.requests;
    reads += o.reads;
    admitted += o.admitted;
    queued += o.queued;
    duplicate_hits += o.duplicate_hits;
    duplicate_applies_suppressed += o.duplicate_applies_suppressed;
    rejected_window += o.rejected_window;
    rejected_bytes += o.rejected_bytes;
    rejected_malformed += o.rejected_malformed;
    rejected_ahead += o.rejected_ahead;
    envelope_gaps += o.envelope_gaps;
    commands_applied += o.commands_applied;
    replies_sent += o.replies_sent;
    reply_cache_evictions += o.reply_cache_evictions;
    admitted_bytes_total += o.admitted_bytes_total;
    return *this;
  }
};

class Gateway {
 public:
  using SendReplyFn = std::function<void(const ClientReply&)>;
  /// How admitted envelopes enter the ring. Defaults to
  /// member.broadcast(Payload); harnesses override it to register the
  /// submission with their invariant checker first.
  using SubmitFn = std::function<void(Payload)>;

  Gateway(GroupMember& member, StateMachine& machine, GatewayConfig config,
          SubmitFn submit = {});

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// The capability standing for "this replica's event thread" (the
  /// simulator's event loop or the TCP transport's I/O thread). Every entry
  /// point requires it; callers reaching the gateway from a marshalled
  /// closure adopt it with ThreadRoleRegion(gw.role()).
  ThreadRole& role() FSR_RETURN_CAPABILITY(role_) { return role_; }

  // --- front-end API (call on this replica's event thread) ---

  /// Bind (or re-bind after reconnect) a client's reply channel.
  /// `conn_serial` identifies the connection so a stale disconnect cannot
  /// tear down a newer binding.
  void on_hello(const ClientHello& hello, SendReplyFn send,
                std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);

  /// One replicated command. `send` refreshes the session's reply channel.
  void on_request(const ClientRequest& req, SendReplyFn send,
                  std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);

  /// Read-only query: answered immediately from the local state machine.
  void on_read(const ClientRead& read, const SendReplyFn& send) FSR_REQUIRES(role_);

  /// The client's connection died; tears down the owned binding (the
  /// session's replicated state survives for the client's next connection,
  /// on any replica).
  void on_client_disconnect(std::uint64_t client_id,
                            std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);

  // --- delivery wiring (every TO-delivery of this node flows through) ---

  /// Applies envelope commands exactly once, routes replies for sessions
  /// this replica owns, refills admission windows. Non-envelope payloads
  /// are applied to the state machine unchanged (plain broadcasts coexist
  /// with gateway traffic).
  void on_delivery(const Delivery& d) FSR_REQUIRES(role_);

  // --- introspection (same thread contract as the entry points) ---

  const GatewayCounters& counters() const FSR_REQUIRES(role_) { return counters_; }
  std::size_t sessions() const FSR_REQUIRES(role_) { return sessions_.size(); }
  std::size_t owned_sessions() const FSR_REQUIRES(role_) { return owned_.size(); }
  std::size_t admitted_bytes() const FSR_REQUIRES(role_) { return admitted_bytes_; }
  /// Total cached replies across sessions; bounded by
  /// sessions() * cfg.reply_cache (the chaos oracle asserts exactly this
  /// under duplicate floods).
  std::size_t reply_cache_entries() const FSR_REQUIRES(role_) {
    std::size_t total = 0;
    for (const auto& [id, sess] : sessions_) total += sess.cache.size();
    return total;
  }
  /// Last executed session_seq for a client (0 = unknown client).
  std::uint64_t last_executed(std::uint64_t client_id) const FSR_REQUIRES(role_);

 private:
  /// Replicated per-session state: advanced only by TO-deliveries, so all
  /// replicas agree on it. The cache keeps the most recent executed
  /// replies for duplicate retries.
  struct CachedReply {
    std::uint64_t seq = 0;
    Payload reply;
  };
  struct SessionState {
    std::uint64_t last_executed = 0;
    std::deque<CachedReply> cache;
  };

  /// Local state for sessions whose client connection this replica owns.
  struct OwnedSession {
    SendReplyFn send;
    std::uint64_t conn_serial = 0;
    std::uint64_t highest_admitted = 0;  ///< max seq admitted or queued here
    std::uint64_t last_replied = 0;      ///< max seq answered at delivery time
    std::map<std::uint64_t, std::size_t> in_flight;  ///< seq -> envelope bytes
    std::deque<std::pair<std::uint64_t, Payload>> queue;  ///< (seq, envelope)
    std::size_t queued_bytes = 0;
    /// Highest seq bounced by backpressure (window/bytes), and with what.
    /// A pipelined burst keeps arriving above `expected` after the first
    /// rejection; those are the same backpressure event, not a client bug,
    /// and get the same status. Reset on the next successful admit/queue.
    std::uint64_t rejected_tail = 0;
    ClientStatus rejected_status = ClientStatus::kOk;
  };

  void reply(OwnedSession& own, const ClientReply& r) FSR_REQUIRES(role_);
  void admit(std::uint64_t client_id, OwnedSession& own, std::uint64_t seq,
             Payload envelope) FSR_REQUIRES(role_);
  void refill(std::uint64_t client_id, OwnedSession& own,
              const SessionState& sess) FSR_REQUIRES(role_);
  const CachedReply* cached(const SessionState& sess, std::uint64_t seq) const
      FSR_REQUIRES(role_);

  GroupMember& member_;
  StateMachine& machine_;
  GatewayConfig cfg_;
  SubmitFn submit_;

  ThreadRole role_{"Gateway::event"};

  std::unordered_map<std::uint64_t, SessionState> sessions_ FSR_GUARDED_BY(role_);
  std::unordered_map<std::uint64_t, OwnedSession> owned_ FSR_GUARDED_BY(role_);
  std::size_t admitted_bytes_ FSR_GUARDED_BY(role_) = 0;  ///< in-flight + queued bytes

  GatewayCounters counters_ FSR_GUARDED_BY(role_);
};

}  // namespace fsr
