// The shard router: one front door over S independent ordering domains
// (shards). Each shard is a full Gateway + GroupMember + FSR ring of its
// own; the router partitions the state-machine keyspace across them with a
// consistent hash (ShardMap) and presents the same front-end surface as a
// single Gateway, so GatewayServer and the sim harness drive either
// interchangeably.
//
// Routing rules:
//   * A command routes by its state-machine key (first length-prefixed
//     field after the opcode); a read routes by its query key. Unparseable
//     keys fall back to shard 0 — deterministically, so every replica's
//     router agrees.
//   * on_hello binds the client's reply channel in *every* shard (ack
//     suppressed) and sends one merged ack whose resume point is the
//     minimum last_executed across shards: seqs at or below any shard's
//     horizon replay as duplicates, so resuming from the minimum is always
//     safe.
//   * Drain scopes, coalesce flushes and disconnects fan out to all shards;
//     each shard keeps its own coalescing batch, which is what splits a
//     client burst into per-shard 0xC6 sub-batches transparently.
//
// Exactly-once across shards: shard gateways run sparse_sessions mode (each
// sees only the gappy subsequence of a session's seqs whose keys hash to
// it). Per-shard in-order admission + the per-session rejected-tail gate
// preserve the execute-once-at-delivery argument within each shard, and
// shards share no session seq, so a shard-spanning batch executes each
// sub-command exactly once in exactly one shard.
//
// Threading: the router and all S shard gateways of a replica live on that
// replica's single event thread. The router owns its own ThreadRole; its
// per-loop state (routing counters) is FSR_GUARDED_BY it, and calls into a
// shard gateway adopt that gateway's role in a nested ThreadRoleRegion —
// distinct roles nest on one thread by design.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/sync.h"
#include "gateway/gateway.h"
#include "gateway/shard_map.h"

namespace fsr {

/// Router-level health counters, alongside the per-shard GatewayCounters.
struct ShardRouterCounters {
  std::uint64_t hellos = 0;           ///< merged hello acks sent
  std::uint64_t requests_routed = 0;  ///< commands routed to a shard
  std::uint64_t reads_routed = 0;     ///< reads routed to a shard
  std::uint64_t malformed_keys = 0;   ///< unparseable keys (shard-0 fallback)
};

class ShardRouter {
 public:
  using SendReplyFn = Gateway::SendReplyFn;

  /// `shards[g]` must be the gateway of ordering domain g on this replica;
  /// all of them (and the router) live on the calling event thread. With
  /// more than one shard every gateway must run sparse_sessions mode.
  ShardRouter(std::vector<Gateway*> shards, ShardMap map);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The capability standing for "this replica's event thread", distinct
  /// from (and nesting with) each shard gateway's role.
  ThreadRole& role() FSR_RETURN_CAPABILITY(role_) { return role_; }

  GroupId shards() const { return map_.shards(); }
  const ShardMap& map() const { return map_; }
  Gateway& shard(GroupId g) { return *shards_[g]; }

  // --- key extraction (pure; exposed for tests) ---

  /// The routing key of a state-machine command ([u8 op][varint len][key]
  /// ...) or an empty span when unparseable.
  static std::span<const std::uint8_t> command_key(
      std::span<const std::uint8_t> command);
  /// The routing key of a read query ([varint len][key]), empty when
  /// unparseable.
  static std::span<const std::uint8_t> query_key(
      std::span<const std::uint8_t> query);

  // --- Gateway-shaped front-end surface ---

  void on_hello(const ClientHello& hello, SendReplyFn send,
                std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);
  void on_request(const ClientRequest& req, SendReplyFn send,
                  std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);
  void on_read(const ClientRead& read, const SendReplyFn& send)
      FSR_REQUIRES(role_);
  void flush_coalesced() FSR_REQUIRES(role_);
  void begin_drain() FSR_REQUIRES(role_);
  void end_drain() FSR_REQUIRES(role_);
  void on_client_disconnect(std::uint64_t client_id,
                            std::uint64_t conn_serial = 0) FSR_REQUIRES(role_);

  // --- introspection (event-thread contract, like the gateway's) ---

  const ShardRouterCounters& router_counters() const FSR_REQUIRES(role_) {
    return counters_;
  }
  std::uint64_t routed_to(GroupId g) const FSR_REQUIRES(role_) {
    return routed_per_shard_[g];
  }
  /// Aggregate GatewayCounters across all shards of this replica.
  GatewayCounters counters() const FSR_REQUIRES(role_);
  /// One shard's GatewayCounters.
  GatewayCounters shard_counters(GroupId g) const FSR_REQUIRES(role_);
  /// The merged session resume point: min over shards of last_executed
  /// (0 = unknown client). This is what the merged hello ack reports.
  std::uint64_t last_executed(std::uint64_t client_id) const FSR_REQUIRES(role_);
  std::size_t admitted_bytes() const FSR_REQUIRES(role_);

 private:
  GroupId route(std::span<const std::uint8_t> key) FSR_REQUIRES(role_);

  std::vector<Gateway*> shards_;
  ShardMap map_;

  ThreadRole role_{"ShardRouter::event"};
  ShardRouterCounters counters_ FSR_GUARDED_BY(role_);
  std::vector<std::uint64_t> routed_per_shard_ FSR_GUARDED_BY(role_);
};

}  // namespace fsr
