#include "gateway/shard_router.h"

#include <limits>

#include "common/bytes.h"

namespace fsr {

ShardRouter::ShardRouter(std::vector<Gateway*> shards, ShardMap map)
    : shards_(std::move(shards)), map_(std::move(map)) {
  routed_per_shard_.assign(shards_.size(), 0);
}

std::span<const std::uint8_t> ShardRouter::command_key(
    std::span<const std::uint8_t> command) {
  try {
    ByteReader r(command);
    r.u8();  // opcode
    return r.bytes_view();
  } catch (const CodecError&) {
    return {};
  }
}

std::span<const std::uint8_t> ShardRouter::query_key(
    std::span<const std::uint8_t> query) {
  try {
    ByteReader r(query);
    return r.bytes_view();
  } catch (const CodecError&) {
    return {};
  }
}

GroupId ShardRouter::route(std::span<const std::uint8_t> key) {
  if (key.empty()) {
    // Unparseable command: still route it deterministically (shard 0) so it
    // earns its kBadRequest/ERR reply through the normal ordered path.
    ++counters_.malformed_keys;
    return 0;
  }
  return map_.shard_for_key(key);
}

void ShardRouter::on_hello(const ClientHello& hello, SendReplyFn send,
                           std::uint64_t conn_serial) {
  ++counters_.hellos;
  std::uint64_t resume = std::numeric_limits<std::uint64_t>::max();
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    gw->on_hello(hello, send, conn_serial, /*send_ack=*/false);
    resume = std::min(resume, gw->last_executed(hello.client_id));
  }
  // One merged ack. Resuming from the *minimum* last_executed is safe:
  // every seq at or below some shard's horizon is answered as a duplicate
  // (reply cache or suppression) when the client replays it.
  ClientReply ack;
  ack.client_id = hello.client_id;
  ack.session_seq = resume;
  ack.status = ClientStatus::kOk;
  if (send) send(ack);
}

void ShardRouter::on_request(const ClientRequest& req, SendReplyFn send,
                             std::uint64_t conn_serial) {
  ++counters_.requests_routed;
  GroupId g = route(command_key(req.command.span()));
  ++routed_per_shard_[g];
  ThreadRoleRegion region(shards_[g]->role());
  shards_[g]->on_request(req, std::move(send), conn_serial);
}

void ShardRouter::on_read(const ClientRead& read, const SendReplyFn& send) {
  ++counters_.reads_routed;
  GroupId g = route(query_key(read.query.span()));
  ++routed_per_shard_[g];
  ThreadRoleRegion region(shards_[g]->role());
  shards_[g]->on_read(read, send);
}

void ShardRouter::flush_coalesced() {
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    gw->flush_coalesced();
  }
}

void ShardRouter::begin_drain() {
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    gw->begin_drain();
  }
}

void ShardRouter::end_drain() {
  // Each shard flushes its own coalescing batch here — a client burst that
  // spanned shards leaves as one 0xC6 sub-batch per touched shard.
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    gw->end_drain();
  }
}

void ShardRouter::on_client_disconnect(std::uint64_t client_id,
                                       std::uint64_t conn_serial) {
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    gw->on_client_disconnect(client_id, conn_serial);
  }
}

GatewayCounters ShardRouter::counters() const {
  GatewayCounters total;
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    total += gw->counters();
  }
  return total;
}

GatewayCounters ShardRouter::shard_counters(GroupId g) const {
  ThreadRoleRegion region(shards_[g]->role());
  return shards_[g]->counters();
}

std::uint64_t ShardRouter::last_executed(std::uint64_t client_id) const {
  std::uint64_t resume = std::numeric_limits<std::uint64_t>::max();
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    resume = std::min(resume, gw->last_executed(client_id));
  }
  return resume;
}

std::size_t ShardRouter::admitted_bytes() const {
  std::size_t total = 0;
  for (Gateway* gw : shards_) {
    ThreadRoleRegion region(gw->role());
    total += gw->admitted_bytes();
  }
  return total;
}

}  // namespace fsr
