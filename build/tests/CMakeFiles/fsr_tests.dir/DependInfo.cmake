
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app.cpp" "tests/CMakeFiles/fsr_tests.dir/test_app.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_app.cpp.o.d"
  "/root/repo/tests/test_baseline_fuzz.cpp" "tests/CMakeFiles/fsr_tests.dir/test_baseline_fuzz.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_baseline_fuzz.cpp.o.d"
  "/root/repo/tests/test_checkers.cpp" "tests/CMakeFiles/fsr_tests.dir/test_checkers.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_checkers.cpp.o.d"
  "/root/repo/tests/test_churn_fuzz.cpp" "tests/CMakeFiles/fsr_tests.dir/test_churn_fuzz.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_churn_fuzz.cpp.o.d"
  "/root/repo/tests/test_codec.cpp" "tests/CMakeFiles/fsr_tests.dir/test_codec.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_codec.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/fsr_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_crash_fuzz.cpp" "tests/CMakeFiles/fsr_tests.dir/test_crash_fuzz.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_crash_fuzz.cpp.o.d"
  "/root/repo/tests/test_engine_defensive.cpp" "tests/CMakeFiles/fsr_tests.dir/test_engine_defensive.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_engine_defensive.cpp.o.d"
  "/root/repo/tests/test_engine_unit.cpp" "tests/CMakeFiles/fsr_tests.dir/test_engine_unit.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_engine_unit.cpp.o.d"
  "/root/repo/tests/test_fixed_seq_engine.cpp" "tests/CMakeFiles/fsr_tests.dir/test_fixed_seq_engine.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_fixed_seq_engine.cpp.o.d"
  "/root/repo/tests/test_fsr_basic.cpp" "tests/CMakeFiles/fsr_tests.dir/test_fsr_basic.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_fsr_basic.cpp.o.d"
  "/root/repo/tests/test_group_unit.cpp" "tests/CMakeFiles/fsr_tests.dir/test_group_unit.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_group_unit.cpp.o.d"
  "/root/repo/tests/test_heartbeat.cpp" "tests/CMakeFiles/fsr_tests.dir/test_heartbeat.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_heartbeat.cpp.o.d"
  "/root/repo/tests/test_join.cpp" "tests/CMakeFiles/fsr_tests.dir/test_join.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_join.cpp.o.d"
  "/root/repo/tests/test_moving_seq_engine.cpp" "tests/CMakeFiles/fsr_tests.dir/test_moving_seq_engine.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_moving_seq_engine.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/fsr_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_privilege_engine.cpp" "tests/CMakeFiles/fsr_tests.dir/test_privilege_engine.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_privilege_engine.cpp.o.d"
  "/root/repo/tests/test_protocol_fuzz.cpp" "tests/CMakeFiles/fsr_tests.dir/test_protocol_fuzz.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_protocol_fuzz.cpp.o.d"
  "/root/repo/tests/test_ring_rules.cpp" "tests/CMakeFiles/fsr_tests.dir/test_ring_rules.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_ring_rules.cpp.o.d"
  "/root/repo/tests/test_round_engine.cpp" "tests/CMakeFiles/fsr_tests.dir/test_round_engine.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_round_engine.cpp.o.d"
  "/root/repo/tests/test_round_model.cpp" "tests/CMakeFiles/fsr_tests.dir/test_round_model.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_round_model.cpp.o.d"
  "/root/repo/tests/test_round_model_extra.cpp" "tests/CMakeFiles/fsr_tests.dir/test_round_model_extra.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_round_model_extra.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/fsr_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_soak.cpp" "tests/CMakeFiles/fsr_tests.dir/test_soak.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_soak.cpp.o.d"
  "/root/repo/tests/test_state_transfer.cpp" "tests/CMakeFiles/fsr_tests.dir/test_state_transfer.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_state_transfer.cpp.o.d"
  "/root/repo/tests/test_tcp.cpp" "tests/CMakeFiles/fsr_tests.dir/test_tcp.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_tcp.cpp.o.d"
  "/root/repo/tests/test_tcp_transport_unit.cpp" "tests/CMakeFiles/fsr_tests.dir/test_tcp_transport_unit.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_tcp_transport_unit.cpp.o.d"
  "/root/repo/tests/test_view_change.cpp" "tests/CMakeFiles/fsr_tests.dir/test_view_change.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_view_change.cpp.o.d"
  "/root/repo/tests/test_wire_behavior.cpp" "tests/CMakeFiles/fsr_tests.dir/test_wire_behavior.cpp.o" "gcc" "tests/CMakeFiles/fsr_tests.dir/test_wire_behavior.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fsr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
