# Empty dependencies file for fsr_tests.
# This may be replaced when dependencies are built.
