# Empty compiler generated dependencies file for bench_model_latency.
# This may be replaced when dependencies are built.
