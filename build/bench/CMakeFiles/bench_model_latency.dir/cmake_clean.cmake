file(REMOVE_RECURSE
  "CMakeFiles/bench_model_latency.dir/bench_model_latency.cpp.o"
  "CMakeFiles/bench_model_latency.dir/bench_model_latency.cpp.o.d"
  "CMakeFiles/bench_model_latency.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_model_latency.dir/support/bench_common.cpp.o.d"
  "bench_model_latency"
  "bench_model_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
