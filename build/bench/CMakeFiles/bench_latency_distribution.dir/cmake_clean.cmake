file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_distribution.dir/bench_latency_distribution.cpp.o"
  "CMakeFiles/bench_latency_distribution.dir/bench_latency_distribution.cpp.o.d"
  "CMakeFiles/bench_latency_distribution.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_latency_distribution.dir/support/bench_common.cpp.o.d"
  "bench_latency_distribution"
  "bench_latency_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
