file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_throughput_vs_senders.dir/bench_fig9_throughput_vs_senders.cpp.o"
  "CMakeFiles/bench_fig9_throughput_vs_senders.dir/bench_fig9_throughput_vs_senders.cpp.o.d"
  "CMakeFiles/bench_fig9_throughput_vs_senders.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_fig9_throughput_vs_senders.dir/support/bench_common.cpp.o.d"
  "bench_fig9_throughput_vs_senders"
  "bench_fig9_throughput_vs_senders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_throughput_vs_senders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
