# Empty dependencies file for bench_fig9_throughput_vs_senders.
# This may be replaced when dependencies are built.
