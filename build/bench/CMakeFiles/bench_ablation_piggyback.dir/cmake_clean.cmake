file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_piggyback.dir/bench_ablation_piggyback.cpp.o"
  "CMakeFiles/bench_ablation_piggyback.dir/bench_ablation_piggyback.cpp.o.d"
  "CMakeFiles/bench_ablation_piggyback.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_piggyback.dir/support/bench_common.cpp.o.d"
  "bench_ablation_piggyback"
  "bench_ablation_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
