# Empty compiler generated dependencies file for bench_tcp_ring.
# This may be replaced when dependencies are built.
