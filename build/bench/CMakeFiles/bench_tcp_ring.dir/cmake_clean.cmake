file(REMOVE_RECURSE
  "CMakeFiles/bench_tcp_ring.dir/bench_tcp_ring.cpp.o"
  "CMakeFiles/bench_tcp_ring.dir/bench_tcp_ring.cpp.o.d"
  "CMakeFiles/bench_tcp_ring.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_tcp_ring.dir/support/bench_common.cpp.o.d"
  "bench_tcp_ring"
  "bench_tcp_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcp_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
