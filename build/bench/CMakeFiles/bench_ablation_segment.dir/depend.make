# Empty dependencies file for bench_ablation_segment.
# This may be replaced when dependencies are built.
