file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_segment.dir/bench_ablation_segment.cpp.o"
  "CMakeFiles/bench_ablation_segment.dir/bench_ablation_segment.cpp.o.d"
  "CMakeFiles/bench_ablation_segment.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_segment.dir/support/bench_common.cpp.o.d"
  "bench_ablation_segment"
  "bench_ablation_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
