# Empty compiler generated dependencies file for bench_fig8_throughput_vs_n.
# This may be replaced when dependencies are built.
