file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_throughput_vs_n.dir/bench_fig8_throughput_vs_n.cpp.o"
  "CMakeFiles/bench_fig8_throughput_vs_n.dir/bench_fig8_throughput_vs_n.cpp.o.d"
  "CMakeFiles/bench_fig8_throughput_vs_n.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_fig8_throughput_vs_n.dir/support/bench_common.cpp.o.d"
  "bench_fig8_throughput_vs_n"
  "bench_fig8_throughput_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_throughput_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
