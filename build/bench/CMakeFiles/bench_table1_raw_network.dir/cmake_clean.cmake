file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_raw_network.dir/bench_table1_raw_network.cpp.o"
  "CMakeFiles/bench_table1_raw_network.dir/bench_table1_raw_network.cpp.o.d"
  "CMakeFiles/bench_table1_raw_network.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_table1_raw_network.dir/support/bench_common.cpp.o.d"
  "bench_table1_raw_network"
  "bench_table1_raw_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_raw_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
