# Empty dependencies file for bench_baseline_packet.
# This may be replaced when dependencies are built.
