file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_packet.dir/bench_baseline_packet.cpp.o"
  "CMakeFiles/bench_baseline_packet.dir/bench_baseline_packet.cpp.o.d"
  "CMakeFiles/bench_baseline_packet.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_baseline_packet.dir/support/bench_common.cpp.o.d"
  "bench_baseline_packet"
  "bench_baseline_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
