file(REMOVE_RECURSE
  "CMakeFiles/bench_model_comparison.dir/bench_model_comparison.cpp.o"
  "CMakeFiles/bench_model_comparison.dir/bench_model_comparison.cpp.o.d"
  "CMakeFiles/bench_model_comparison.dir/support/bench_common.cpp.o"
  "CMakeFiles/bench_model_comparison.dir/support/bench_common.cpp.o.d"
  "bench_model_comparison"
  "bench_model_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
