# Empty dependencies file for bench_fig6_latency_vs_n.
# This may be replaced when dependencies are built.
