# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicated_kv "/root/repo/build/examples/example_replicated_kv")
set_tests_properties(example_replicated_kv PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fair_senders "/root/repo/build/examples/example_fair_senders")
set_tests_properties(example_fair_senders PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leader_rotation "/root/repo/build/examples/example_leader_rotation")
set_tests_properties(example_leader_rotation PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_trace "/root/repo/build/examples/example_protocol_trace")
set_tests_properties(example_protocol_trace PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tcp_ring "/root/repo/build/examples/example_tcp_ring")
set_tests_properties(example_tcp_ring PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
