# Empty dependencies file for example_protocol_trace.
# This may be replaced when dependencies are built.
