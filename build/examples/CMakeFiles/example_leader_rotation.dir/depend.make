# Empty dependencies file for example_leader_rotation.
# This may be replaced when dependencies are built.
