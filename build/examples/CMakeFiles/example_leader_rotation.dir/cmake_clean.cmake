file(REMOVE_RECURSE
  "CMakeFiles/example_leader_rotation.dir/leader_rotation.cpp.o"
  "CMakeFiles/example_leader_rotation.dir/leader_rotation.cpp.o.d"
  "example_leader_rotation"
  "example_leader_rotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_leader_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
