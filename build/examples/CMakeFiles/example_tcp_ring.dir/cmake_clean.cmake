file(REMOVE_RECURSE
  "CMakeFiles/example_tcp_ring.dir/tcp_ring.cpp.o"
  "CMakeFiles/example_tcp_ring.dir/tcp_ring.cpp.o.d"
  "example_tcp_ring"
  "example_tcp_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tcp_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
