# Empty dependencies file for example_tcp_ring.
# This may be replaced when dependencies are built.
