file(REMOVE_RECURSE
  "CMakeFiles/example_fair_senders.dir/fair_senders.cpp.o"
  "CMakeFiles/example_fair_senders.dir/fair_senders.cpp.o.d"
  "example_fair_senders"
  "example_fair_senders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fair_senders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
