# Empty compiler generated dependencies file for example_fair_senders.
# This may be replaced when dependencies are built.
