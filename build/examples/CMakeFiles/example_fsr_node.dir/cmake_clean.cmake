file(REMOVE_RECURSE
  "CMakeFiles/example_fsr_node.dir/fsr_node.cpp.o"
  "CMakeFiles/example_fsr_node.dir/fsr_node.cpp.o.d"
  "example_fsr_node"
  "example_fsr_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fsr_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
