# Empty compiler generated dependencies file for example_fsr_node.
# This may be replaced when dependencies are built.
