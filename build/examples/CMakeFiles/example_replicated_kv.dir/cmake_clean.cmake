file(REMOVE_RECURSE
  "CMakeFiles/example_replicated_kv.dir/replicated_kv.cpp.o"
  "CMakeFiles/example_replicated_kv.dir/replicated_kv.cpp.o.d"
  "example_replicated_kv"
  "example_replicated_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_replicated_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
