# Empty dependencies file for example_replicated_kv.
# This may be replaced when dependencies are built.
