file(REMOVE_RECURSE
  "libfsr.a"
)
