
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/bank.cpp" "src/CMakeFiles/fsr.dir/app/bank.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/app/bank.cpp.o.d"
  "/root/repo/src/app/kv_store.cpp" "src/CMakeFiles/fsr.dir/app/kv_store.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/app/kv_store.cpp.o.d"
  "/root/repo/src/baselines/fixed_seq_engine.cpp" "src/CMakeFiles/fsr.dir/baselines/fixed_seq_engine.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/baselines/fixed_seq_engine.cpp.o.d"
  "/root/repo/src/baselines/moving_seq_engine.cpp" "src/CMakeFiles/fsr.dir/baselines/moving_seq_engine.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/baselines/moving_seq_engine.cpp.o.d"
  "/root/repo/src/baselines/privilege_engine.cpp" "src/CMakeFiles/fsr.dir/baselines/privilege_engine.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/baselines/privilege_engine.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/fsr.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/common/log.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/CMakeFiles/fsr.dir/common/types.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/common/types.cpp.o.d"
  "/root/repo/src/fsr/engine.cpp" "src/CMakeFiles/fsr.dir/fsr/engine.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/fsr/engine.cpp.o.d"
  "/root/repo/src/harness/sim_cluster.cpp" "src/CMakeFiles/fsr.dir/harness/sim_cluster.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/harness/sim_cluster.cpp.o.d"
  "/root/repo/src/harness/tcp_cluster.cpp" "src/CMakeFiles/fsr.dir/harness/tcp_cluster.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/harness/tcp_cluster.cpp.o.d"
  "/root/repo/src/net/cluster_net.cpp" "src/CMakeFiles/fsr.dir/net/cluster_net.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/net/cluster_net.cpp.o.d"
  "/root/repo/src/proto/codec.cpp" "src/CMakeFiles/fsr.dir/proto/codec.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/proto/codec.cpp.o.d"
  "/root/repo/src/roundmodel/comm_history_round.cpp" "src/CMakeFiles/fsr.dir/roundmodel/comm_history_round.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/roundmodel/comm_history_round.cpp.o.d"
  "/root/repo/src/roundmodel/dest_agreement_round.cpp" "src/CMakeFiles/fsr.dir/roundmodel/dest_agreement_round.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/roundmodel/dest_agreement_round.cpp.o.d"
  "/root/repo/src/roundmodel/fixed_seq_round.cpp" "src/CMakeFiles/fsr.dir/roundmodel/fixed_seq_round.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/roundmodel/fixed_seq_round.cpp.o.d"
  "/root/repo/src/roundmodel/fsr_round.cpp" "src/CMakeFiles/fsr.dir/roundmodel/fsr_round.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/roundmodel/fsr_round.cpp.o.d"
  "/root/repo/src/roundmodel/moving_seq_round.cpp" "src/CMakeFiles/fsr.dir/roundmodel/moving_seq_round.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/roundmodel/moving_seq_round.cpp.o.d"
  "/root/repo/src/roundmodel/privilege_round.cpp" "src/CMakeFiles/fsr.dir/roundmodel/privilege_round.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/roundmodel/privilege_round.cpp.o.d"
  "/root/repo/src/roundmodel/round_engine.cpp" "src/CMakeFiles/fsr.dir/roundmodel/round_engine.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/roundmodel/round_engine.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/fsr.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/transport/sim_transport.cpp" "src/CMakeFiles/fsr.dir/transport/sim_transport.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/transport/sim_transport.cpp.o.d"
  "/root/repo/src/transport/tcp_transport.cpp" "src/CMakeFiles/fsr.dir/transport/tcp_transport.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/transport/tcp_transport.cpp.o.d"
  "/root/repo/src/vsc/group.cpp" "src/CMakeFiles/fsr.dir/vsc/group.cpp.o" "gcc" "src/CMakeFiles/fsr.dir/vsc/group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
