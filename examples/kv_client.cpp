// A session client for the replicated KV service. Point it at the gateway
// ports of the example_kv_server replicas (any subset — it fails over):
//
//   $ ./example_kv_client 127.0.0.1:9100 127.0.0.1:9101 127.0.0.1:9102
//   > put user:42 alice
//   OK
//   > get user:42
//   alice
//   > cas user:42 alice bob
//   OK
//
// Commands: put <key> <value> | get <key> | cas <key> <old> <new> | quit.
// Kill the server the client is connected to mid-stream: the retry goes
// through another replica and still executes exactly once.
//
//   --demo    instead of reading stdin, run a self-contained demonstration:
//             spin up a 3-replica TcpGatewayCluster in-process, drive a
//             chained-CAS session through it, crash the client's replica
//             mid-chain, and verify exactly-once execution on the
//             survivors. Exits nonzero on violation (used by the tests).
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/kv_store.h"
#include "common/log.h"
#include "gateway/client_driver.h"
#include "gateway/tcp_gateway.h"

using namespace fsr;

namespace {

bool parse_addr(const std::string& s, GatewayEndpoint& ep) {
  auto colon = s.rfind(':');
  if (colon == std::string::npos) return false;
  ep.host = s.substr(0, colon);
  ep.port = static_cast<std::uint16_t>(std::stoi(s.substr(colon + 1)));
  return true;
}

int run_repl(std::vector<GatewayEndpoint> endpoints) {
  GatewayClient::Options opt;
  opt.client_id = static_cast<std::uint64_t>(::getpid());
  opt.endpoints = std::move(endpoints);
  GatewayClient client(opt);

  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd, key, a, b;
    in >> cmd;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "put" && (in >> key) && std::getline(in >> std::ws, a)) {
      auto r = client.call(KvStore::encode_put(key, a));
      std::printf("%s\n", r.ok ? std::string(r.reply.begin(), r.reply.end()).c_str()
                               : "ERROR: no reply");
    } else if (cmd == "cas" && (in >> key >> a >> b)) {
      auto r = client.call(KvStore::encode_cas(key, a, b));
      std::printf("%s\n", r.ok ? std::string(r.reply.begin(), r.reply.end()).c_str()
                               : "ERROR: no reply");
    } else if (cmd == "get" && (in >> key)) {
      auto reply = client.read(KvStore::encode_get(key));
      if (!reply) {
        std::printf("ERROR: no reply\n");
      } else if (auto val = KvStore::decode_get_reply(*reply)) {
        std::printf("%s\n", val->c_str());
      } else {
        std::printf("(not found)\n");
      }
    } else if (!cmd.empty()) {
      std::printf("?  put <k> <v> | get <k> | cas <k> <old> <new> | quit\n");
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}

int run_demo() {
  std::printf("== demo: 3-replica KV service over real TCP ==\n");
  TcpGatewayClusterConfig cfg;
  cfg.n = 3;
  cfg.group.engine.t = 1;
  TcpGatewayCluster gc(cfg);

  GatewayClient::Options opt;
  opt.client_id = 7;
  opt.endpoints = gc.endpoints();
  GatewayClient client(opt);

  // A chained CAS is the sharpest exactly-once oracle: if any retry were
  // re-executed, the second application would see a stale expected value
  // and the store's failed-CAS counter would trip.
  const int kChain = 60;
  auto r = client.call(KvStore::encode_put("x", "0"));
  if (!r.ok || r.status != ClientStatus::kOk) return 1;
  for (int i = 0; i < kChain; ++i) {
    if (i == kChain / 3) {
      std::printf("   !! crashing the client's replica mid-chain\n");
      gc.crash(static_cast<NodeId>(client.endpoint_index()));
    }
    r = client.call(KvStore::encode_cas("x", std::to_string(i), std::to_string(i + 1)));
    if (!r.ok || r.status != ClientStatus::kOk) {
      std::printf("   chain broke at step %d\n", i);
      return 1;
    }
  }
  auto final_val = client.read(KvStore::encode_get("x"));
  std::printf("   chain done: x=%s, reconnects=%zu, duplicate replies=%llu\n",
              final_val ? KvStore::decode_get_reply(*final_val)
                              .value_or("?")
                              .c_str()
                        : "?",
              client.reconnects(),
              static_cast<unsigned long long>(client.duplicates_observed()));

  // Let the survivors drain, then check convergence + exactly-once.
  std::vector<std::uint64_t> fps;
  for (int tries = 0; tries < 100; ++tries) {
    fps = gc.fingerprints();
    bool equal = true;
    for (auto fp : fps) equal = equal && fp == fps[0];
    if (equal && fps.size() == 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  bool identical = fps.size() == 2 && fps[0] == fps[1];
  bool exactly_once = gc.total_failed_cas() == 0;
  std::string err = gc.check_invariants();
  std::printf("survivors identical: %s | exactly-once (no failed CAS): %s | "
              "invariants: %s\n",
              identical ? "YES" : "NO", exactly_once ? "YES" : "NO",
              err.empty() ? "OK" : err.c_str());
  bool value_ok = final_val &&
                  KvStore::decode_get_reply(*final_val) == std::to_string(kChain);
  return (identical && exactly_once && value_ok && err.empty()) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  std::vector<GatewayEndpoint> endpoints;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
      continue;
    }
    GatewayEndpoint ep;
    if (!parse_addr(argv[i], ep)) {
      std::fprintf(stderr, "bad endpoint: %s\n", argv[i]);
      return 2;
    }
    endpoints.push_back(ep);
  }
  if (demo) return run_demo();
  if (endpoints.empty()) {
    std::fprintf(stderr,
                 "usage: %s [--demo] <host:port> [<host:port> ...]\n"
                 "       endpoints are example_kv_server client ports\n",
                 argv[0]);
    return 2;
  }
  return run_repl(endpoints);
}
