// A deployable FSR node: one OS process per cluster member, speaking real
// TCP. Lines read from stdin are TO-broadcast; every delivery is printed.
// Run each member in its own terminal (or machine — use host:port):
//
//   $ ./example_fsr_node 0 127.0.0.1:7000 127.0.0.1:7001 127.0.0.1:7002
//   $ ./example_fsr_node 1 127.0.0.1:7000 127.0.0.1:7001 127.0.0.1:7002
//   $ ./example_fsr_node 2 127.0.0.1:7000 127.0.0.1:7001 127.0.0.1:7002
//
// argv[1] is this process's index into the address list; the list defines
// the initial view (and ring order). Type a line in any node: all nodes
// print it at the same sequence number. Ctrl-D leaves the group cleanly.
//
//   --demo    instead of reading stdin, broadcast a few messages and exit
//             (used by the test suite to smoke-test the binary).
#include <cstdio>
#include <cstring>
#include <chrono>
#include <iostream>
#include <thread>
#include <string>
#include <vector>

#include "common/log.h"
#include "transport/tcp_transport.h"
#include "vsc/group.h"

using namespace fsr;

namespace {

bool parse_addr(const std::string& s, std::string& host, std::uint16_t& port) {
  auto colon = s.rfind(':');
  if (colon == std::string::npos) return false;
  host = s.substr(0, colon);
  port = static_cast<std::uint16_t>(std::stoi(s.substr(colon + 1)));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (args.size() < 3) {
    std::fprintf(stderr,
                 "usage: %s [--demo] <self-index> <host:port> <host:port> ...\n"
                 "       the address list defines the ring; self-index picks ours\n",
                 argv[0]);
    return 2;
  }

  auto self = static_cast<NodeId>(std::stoul(args[0]));
  TcpConfig tcp;
  tcp.self = self;
  View initial;
  initial.id = 1;
  for (std::size_t i = 1; i < args.size(); ++i) {
    TcpPeer peer;
    peer.id = static_cast<NodeId>(i - 1);
    if (!parse_addr(args[i], peer.host, peer.port)) {
      std::fprintf(stderr, "bad address: %s\n", args[i].c_str());
      return 2;
    }
    tcp.peers.push_back(peer);
    initial.members.push_back(peer.id);
  }
  if (self >= initial.members.size()) {
    std::fprintf(stderr, "self-index %u out of range\n", self);
    return 2;
  }

  set_log_level(LogLevel::kInfo);
  TcpTransport transport(tcp);

  GroupConfig group;
  group.engine.t = 1;
  group.heartbeat_interval = 200 * kMillisecond;
  group.heartbeat_timeout = 2 * kSecond;

  GroupMember member(
      transport, group, initial,
      [](const Delivery& d) {
        std::string text(d.payload.begin(), d.payload.end());
        std::printf("[seq %llu] node %u: %s\n",
                    static_cast<unsigned long long>(d.seq), d.origin, text.c_str());
        std::fflush(stdout);
      },
      [](const View& v) {
        std::printf("-- new %s --\n", to_string(v).c_str());
        std::fflush(stdout);
      });

  transport.start();
  std::printf("node %u up at %s; ring of %zu. Type to broadcast, Ctrl-D to leave.\n",
              self, args[self + 1].c_str(), initial.members.size());

  if (demo) {
    for (int i = 0; i < 3; ++i) {
      std::string text = "demo message " + std::to_string(i) + " from node " +
                         std::to_string(self);
      transport.post_wait([&] { member.broadcast(Bytes(text.begin(), text.end())); });
    }
    // Give the ring a moment to circulate everything, then leave.
    std::this_thread::sleep_for(std::chrono::seconds(2));
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      transport.post_wait([&] { member.broadcast(Bytes(line.begin(), line.end())); });
    }
  }

  transport.post_wait([&] { member.request_leave(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  transport.stop();
  return 0;
}
