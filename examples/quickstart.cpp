// Quickstart: a 4-process simulated cluster TO-broadcasting a handful of
// messages. Every process observes the exact same delivery order — the
// total order property that makes state-machine replication work.
//
//   $ ./example_quickstart
#include <cstdio>
#include <string>

#include "harness/sim_cluster.h"

using namespace fsr;

int main() {
  ClusterConfig cfg;
  cfg.n = 4;                    // ring: p0 (leader), p1 (backup), p2, p3
  cfg.group.engine.t = 1;       // tolerate one crash

  SimCluster cluster(cfg);

  // Three processes broadcast concurrently.
  auto say = [&](NodeId who, const std::string& text) {
    cluster.broadcast(who, Bytes(text.begin(), text.end()));
  };
  say(2, "hello from p2");
  say(0, "leader says hi");
  say(3, "p3 checking in");
  say(2, "p2 again");

  cluster.sim().run();  // run the simulated cluster to quiescence

  for (NodeId n = 0; n < 4; ++n) {
    std::printf("process %u delivered, in order:\n", n);
    for (const auto& e : cluster.log(n)) {
      std::printf("  seq=%llu  from p%u (its message #%llu, %zu bytes)\n",
                  static_cast<unsigned long long>(e.seq), e.origin,
                  static_cast<unsigned long long>(e.app_msg), e.bytes);
    }
  }

  std::string err = cluster.check_all();
  std::printf("\ninvariants (total order, agreement, integrity): %s\n",
              err.empty() ? "OK" : err.c_str());
  return err.empty() ? 0 : 1;
}
