// One replica of the replicated KV service, as a deployable OS process:
// FSR group member over real TCP on the ring side, a client-facing gateway
// port on the front. Run one per cluster member, then point
// example_kv_client at the client ports:
//
//   $ ./example_kv_server 0 9100 127.0.0.1:7000 127.0.0.1:7001 127.0.0.1:7002
//   $ ./example_kv_server 1 9101 127.0.0.1:7000 127.0.0.1:7001 127.0.0.1:7002
//   $ ./example_kv_server 2 9102 127.0.0.1:7000 127.0.0.1:7001 127.0.0.1:7002
//   $ ./example_kv_client 127.0.0.1:9100 127.0.0.1:9101 127.0.0.1:9102
//
// argv[1] is this process's index into the ring address list, argv[2] the
// local gateway (client) port. Every client command is TO-broadcast as a
// session envelope and applied on all replicas; kill any one server and
// connected clients fail over with no lost or duplicated commands.
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "app/kv_store.h"
#include "common/log.h"
#include "gateway/tcp_gateway.h"
#include "transport/tcp_transport.h"
#include "vsc/group.h"

using namespace fsr;

namespace {

bool parse_addr(const std::string& s, std::string& host, std::uint16_t& port) {
  auto colon = s.rfind(':');
  if (colon == std::string::npos) return false;
  host = s.substr(0, colon);
  port = static_cast<std::uint16_t>(std::stoi(s.substr(colon + 1)));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr,
                 "usage: %s <self-index> <client-port> <host:port> <host:port> ...\n"
                 "       the address list defines the ring; self-index picks ours\n",
                 argv[0]);
    return 2;
  }

  auto self = static_cast<NodeId>(std::stoul(argv[1]));
  auto client_port = static_cast<std::uint16_t>(std::stoi(argv[2]));

  TcpConfig tcp;
  tcp.self = self;
  View initial;
  initial.id = 1;
  for (int i = 3; i < argc; ++i) {
    TcpPeer peer;
    peer.id = static_cast<NodeId>(i - 3);
    if (!parse_addr(argv[i], peer.host, peer.port)) {
      std::fprintf(stderr, "bad address: %s\n", argv[i]);
      return 2;
    }
    tcp.peers.push_back(peer);
    initial.members.push_back(peer.id);
  }
  if (self >= initial.members.size()) {
    std::fprintf(stderr, "self-index %u out of range\n", self);
    return 2;
  }

  set_log_level(LogLevel::kInfo);
  TcpTransport transport(tcp);

  GroupConfig group;
  group.engine.t = 1;
  group.heartbeat_interval = 200 * kMillisecond;
  group.heartbeat_timeout = 2 * kSecond;

  KvStore store;
  // The gateway is wired up after the member (its constructor needs the
  // member), so the delivery callback reaches it through this pointer. The
  // callback runs on the transport I/O thread — the same thread the
  // GatewayServer marshals client messages onto, so the gateway itself
  // stays single-threaded.
  Gateway* gw = nullptr;
  GroupMember member(
      transport, group, initial,
      [&gw, &store](const Delivery& d) {
        if (gw) {
          Gateway& g = *gw;
          ThreadRoleRegion role(g.role());
          g.on_delivery(d);
        } else {
          store.apply(d.origin, d.payload);
        }
      },
      [](const View& v) {
        std::printf("-- new %s --\n", to_string(v).c_str());
        std::fflush(stdout);
      });
  Gateway gateway(member, store, GatewayConfig{});
  gw = &gateway;
  ShardRouter router({&gateway}, ShardMap(1));

  transport.start();
  GatewayServer server(transport, router);
  server.start(client_port);
  std::printf("replica %u up: ring %s, clients on 127.0.0.1:%u. Ctrl-C to stop.\n",
              self, argv[self + 3], server.port());
  std::fflush(stdout);

  // Serve until killed; the protocol side runs entirely on the transport
  // I/O thread and the gateway server's accept/reader threads.
  for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
}
