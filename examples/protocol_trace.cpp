// Hop-by-hop trace of the FSR message flow — Figure 4 of the paper, live.
// A 5-node ring (leader p0, backup p1) runs two single broadcasts: one from
// a standard process (case 1 in §4.1) and one from a backup (case 2, with
// the pending-ack conversion at p_t). Every frame on the wire is printed.
//
//   $ ./example_protocol_trace
#include <cstdio>
#include <string>

#include "harness/sim_cluster.h"
#include "proto/codec.h"

using namespace fsr;

namespace {

std::string describe(const WireMsg& msg) {
  if (const auto* d = std::get_if<DataMsg>(&msg)) {
    return "DATA " + to_string(d->id);
  }
  if (const auto* s = std::get_if<SeqMsg>(&msg)) {
    return "SEQ  " + to_string(s->id) + " seq=" + std::to_string(s->seq);
  }
  if (const auto* a = std::get_if<AckMsg>(&msg)) {
    return std::string(a->stable ? "ACK  " : "PACK ") + to_string(a->id) +
           " seq=" + std::to_string(a->seq);
  }
  return wire_msg_name(msg);
}

void run_case(const char* title, NodeId sender) {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.group.engine.t = 1;  // p0 leader, p1 backup

  SimCluster cluster(cfg);
  std::printf("\n=== %s (ring of 5, leader p0, backup p1) ===\n", title);
  std::printf("%10s  %-7s %s\n", "time (us)", "link", "messages");

  cluster.world().net().set_frame_tap([&](const Frame& f) {
    std::string msgs;
    for (const auto& m : f.msgs) {
      if (!msgs.empty()) msgs += " + ";
      msgs += describe(m);
    }
    std::printf("%10lld  p%u -> p%u  %s\n",
                static_cast<long long>(cluster.sim().now() / kMicrosecond), f.from,
                f.to, msgs.c_str());
  });

  cluster.broadcast(sender, test_payload(sender, 1, 2000));
  cluster.sim().run();
  std::printf("  -> delivered by all %zu processes (check: %s)\n", cluster.size(),
              cluster.check_all().empty() ? "OK" : cluster.check_all().c_str());
}

}  // namespace

int main() {
  std::printf(
      "FSR passes (paper Fig. 4):\n"
      "  DATA: payload travels from the sender to the leader p0\n"
      "  SEQ : leader assigns the sequence number; pair travels to the\n"
      "        sender's predecessor (processes at positions >= t deliver)\n"
      "  ACK : certifies the pair is stored by leader + backups; receivers\n"
      "        deliver (PACK = pending ack, converted to ACK at backup p_t)\n");

  run_case("case 1: standard process p3 broadcasts", 3);
  run_case("case 2: backup p1 broadcasts (pending-ack path)", 1);
  return 0;
}
