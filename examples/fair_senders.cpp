// The fairness scenario from the paper (§2.3 / §4.2.3): two processes at
// opposite sides of an 8-node ring blast bursts of messages at the same
// time. A privilege/token protocol must choose between hogging the token
// (unfair) and passing it constantly (slow). FSR interleaves the two
// senders almost perfectly at full throughput.
//
//   $ ./example_fair_senders
#include <cstdio>
#include <map>

#include "common/stats.h"
#include "harness/sim_cluster.h"

using namespace fsr;

int main() {
  ClusterConfig cfg;
  cfg.n = 8;
  cfg.group.engine.t = 1;
  cfg.group.engine.segment_size = 8 * 1024;

  SimCluster cluster(cfg);
  const NodeId a = 2, b = 6;  // opposite sides of the ring
  const int kBurst = 50;
  for (int i = 0; i < kBurst; ++i) {
    cluster.broadcast(a, test_payload(a, static_cast<std::uint64_t>(i + 1), 20 * 1024));
    cluster.broadcast(b, test_payload(b, static_cast<std::uint64_t>(i + 1), 20 * 1024));
  }
  cluster.sim().run();

  const auto& log = cluster.log(0);
  std::printf("delivery order at node 0 (first 40, '.'=p%u, '#'=p%u):\n  ", a, b);
  for (std::size_t i = 0; i < log.size() && i < 40; ++i) {
    std::printf("%c", log[i].origin == a ? '.' : '#');
  }
  std::map<NodeId, double> counts;
  std::size_t longest = 0, run = 0;
  NodeId prev = kNoNode;
  for (const auto& e : log) {
    counts[e.origin] += 1;
    run = (e.origin == prev) ? run + 1 : 1;
    prev = e.origin;
    longest = std::max(longest, run);
  }
  double jain = jain_fairness({counts[a], counts[b]});
  Time last = log.back().at;
  std::uint64_t bytes = 0;
  for (const auto& e : log) bytes += e.bytes;

  std::printf("\n\nsender p%u delivered: %.0f messages\n", a, counts[a]);
  std::printf("sender p%u delivered: %.0f messages\n", b, counts[b]);
  std::printf("Jain fairness index : %.4f (1.0 = perfectly fair)\n", jain);
  std::printf("longest one-sender run: %zu\n", longest);
  std::printf("aggregate goodput   : %.1f Mb/s on the modeled 100 Mb/s LAN\n",
              static_cast<double>(bytes) * 8.0 / static_cast<double>(last) * 1000.0);
  std::string err = cluster.check_all();
  std::printf("invariants: %s\n", err.empty() ? "OK" : err.c_str());
  return err.empty() && jain > 0.98 ? 0 : 1;
}
