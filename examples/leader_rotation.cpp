// Leader rotation (paper §4.3.1): FSR's latency depends on a sender's ring
// position relative to the leader — L(i) = 2n + t - i - 1 — so the paper
// suggests periodically moving the leader role around the ring to even out
// per-sender latency. This example measures one process's broadcast latency
// at every leader position, showing the spread the rotation equalizes, and
// exercises the rotate_leader() view change.
//
//   $ ./example_leader_rotation
#include <cstdio>

#include "harness/sim_cluster.h"

using namespace fsr;

int main() {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.group.engine.t = 1;
  SimCluster cluster(cfg);

  const NodeId observer = 3;  // this process's latency is what we track
  std::uint64_t app = 0;

  std::printf("ring of 6, t = 1; measuring node %u's broadcast latency while\n"
              "the leader role rotates around the ring (paper §4.3.1)\n\n",
              observer);
  std::printf("%10s %16s %12s %14s %22s\n", "leader", "ring order", "position i",
              "L(i) rounds", "node-3 latency (ms)");

  double total = 0;
  for (int rotation = 0; rotation < 6; ++rotation) {
    // Measure a contention-free broadcast from the observer.
    cluster.broadcast(observer, test_payload(observer, ++app, 100 * 1024));
    cluster.sim().run();
    Time submit = cluster.submit_time(observer, app);
    Time done = cluster.completion_time(observer, app);
    double ms = static_cast<double>(done - submit) / 1e6;
    total += ms;

    const View& v = cluster.node(observer).view();
    std::string order;
    for (NodeId m : v.members) order += std::to_string(m);
    Position pos = *v.position_of(observer);
    const auto& topo = cluster.node(observer).engine().topology();
    std::printf("%10u %16s %12u %14u %22.1f\n", v.leader(), order.c_str(), pos,
                topo.analytic_latency(pos), ms);

    // Rotate: the coordinator hands the leader role to its successor.
    cluster.node(v.leader()).rotate_leader();
    cluster.sim().run();
  }

  std::printf(
      "\nmean latency over a full rotation: %.1f ms.\n"
      "L(i) (in rounds) varies with the observer's position, and rotation\n"
      "evens it out across processes. In wall-clock terms the spread is\n"
      "small here because the payload crosses n-1 links regardless of\n"
      "position; only the cheap ack hops differ.\n",
      total / 6.0);
  std::string err = cluster.check_all();
  std::printf("invariants: %s\n", err.empty() ? "OK" : err.c_str());
  return err.empty() ? 0 : 1;
}
