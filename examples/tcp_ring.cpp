// FSR over real TCP sockets: an in-process cluster of four nodes on
// 127.0.0.1 (each with its own I/O thread and listening port), running the
// exact same protocol stack as the simulator — including a live crash of
// the sequencer. This is the configuration the paper's own implementation
// ran on its Fast Ethernet cluster.
//
//   $ ./example_tcp_ring
#include <chrono>
#include <cstdio>
#include <thread>

#include "app/bank.h"
#include "harness/sim_cluster.h"  // test_payload / hash_bytes
#include "harness/tcp_cluster.h"

using namespace fsr;

int main() {
  GroupConfig group;
  group.engine.t = 1;
  group.engine.segment_size = 8 * 1024;

  TcpCluster cluster(4, group);
  std::printf("4-node FSR ring on 127.0.0.1 (real TCP sockets)\n\n");

  std::printf("phase 1: concurrent broadcasts from every node\n");
  for (int i = 0; i < 5; ++i) {
    for (NodeId s = 0; s < 4; ++s) {
      cluster.broadcast(s, test_payload(s, static_cast<std::uint64_t>(i + 1), 4096));
    }
  }
  if (!cluster.wait_deliveries(20, 15 * kSecond)) {
    std::printf("timeout waiting for deliveries\n");
    return 1;
  }

  std::printf("phase 2: crash the sequencer (node 0)\n");
  cluster.crash(0);
  if (!cluster.wait_view_size(3, 15 * kSecond)) {
    std::printf("timeout waiting for the view change\n");
    return 1;
  }
  cluster.with_member(1, [](GroupMember& m) {
    std::printf("  new view installed: %s, leader is node %u\n",
                to_string(m.view()).c_str(), m.view().leader());
  });

  std::printf("phase 3: the survivors keep broadcasting\n");
  for (int i = 0; i < 5; ++i) {
    cluster.broadcast(2, test_payload(2, static_cast<std::uint64_t>(i + 6), 4096));
  }
  if (!cluster.wait_deliveries(25, 15 * kSecond)) {
    std::printf("timeout after crash\n");
    return 1;
  }

  // Verify the survivors' logs are identical.
  auto ref = cluster.log(1);
  bool ok = true;
  for (NodeId n : {NodeId{2}, NodeId{3}}) {
    auto log = cluster.log(n);
    if (log.size() != ref.size()) ok = false;
    for (std::size_t i = 0; ok && i < log.size(); ++i) {
      ok = log[i].origin == ref[i].origin && log[i].app_msg == ref[i].app_msg &&
           log[i].payload_hash == ref[i].payload_hash;
    }
  }
  std::printf("\nsurvivors delivered %zu messages each, logs identical: %s\n",
              ref.size(), ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
