// A replicated key-value store on FSR (state-machine replication, the
// application class the paper motivates): five replicas, clients writing
// through different replicas, concurrent compare-and-swap races, and a
// leader crash in the middle — the survivors stay bit-for-bit identical.
//
//   $ ./example_replicated_kv
#include <cstdio>
#include <string>
#include <vector>

#include "app/kv_store.h"
#include "harness/sim_cluster.h"

using namespace fsr;

int main() {
  ClusterConfig cfg;
  cfg.n = 5;
  cfg.group.engine.t = 2;  // survive two crashes

  SimCluster cluster(cfg);
  std::vector<KvStore> replicas(cfg.n);
  cluster.set_delivery_tap([&](NodeId node, const Delivery& d) {
    replicas[node].apply(d.origin, d.payload);
  });

  std::printf("== phase 1: writes through different replicas ==\n");
  cluster.broadcast(1, KvStore::encode_put("user:42", "alice"));
  cluster.broadcast(3, KvStore::encode_put("user:43", "bob"));
  cluster.broadcast(4, KvStore::encode_put("config", "v1"));
  cluster.sim().run();

  std::printf("== phase 2: five replicas race a CAS on the same key ==\n");
  cluster.broadcast(0, KvStore::encode_put("lease", "free"));
  cluster.sim().run();
  for (NodeId n = 0; n < 5; ++n) {
    cluster.broadcast(n, KvStore::encode_cas("lease", "free", "held-by-" + std::to_string(n)));
  }
  cluster.sim().run();
  std::printf("   lease winner (agreed by all): %s\n",
              replicas[0].get("lease")->c_str());

  std::printf("== phase 3: crash the leader mid-stream ==\n");
  for (int i = 0; i < 20; ++i) {
    cluster.broadcast(2, KvStore::encode_put("bulk:" + std::to_string(i), "x"));
  }
  cluster.sim().schedule(5 * kMillisecond, [&] {
    std::printf("   !! crashing node 0 (the sequencer)\n");
    cluster.crash(0);
  });
  cluster.sim().run();
  cluster.broadcast(1, KvStore::encode_put("after-crash", "still-working"));
  cluster.sim().run();

  std::printf("\nreplica fingerprints (survivors):\n");
  for (NodeId n = 1; n < 5; ++n) {
    std::printf("  replica %u: %016llx  (%zu keys, %llu commands)\n", n,
                static_cast<unsigned long long>(replicas[n].fingerprint()),
                replicas[n].size(),
                static_cast<unsigned long long>(replicas[n].applied_commands()));
  }
  bool identical = true;
  for (NodeId n = 2; n < 5; ++n) {
    identical = identical && replicas[n].fingerprint() == replicas[1].fingerprint();
  }
  std::string err = cluster.check_all();
  std::printf("\nreplicas identical: %s | protocol invariants: %s\n",
              identical ? "YES" : "NO", err.empty() ? "OK" : err.c_str());
  return (identical && err.empty()) ? 0 : 1;
}
