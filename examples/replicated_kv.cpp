// A replicated key-value store on FSR (state-machine replication, the
// application class the paper motivates), now served through the client
// gateway: five replicas, client *sessions* writing through different
// replicas, a CAS race settled by total order, and a leader crash in the
// middle of a session's bulk stream — the client retries through a
// different replica and every `bulk:*` command still applies exactly once
// on every survivor.
//
//   $ ./example_replicated_kv
#include <cstdio>
#include <string>

#include "app/kv_store.h"
#include "gateway/sim_gateway.h"

using namespace fsr;

int main() {
  SimGatewayConfig cfg;
  cfg.cluster.n = 5;
  cfg.cluster.group.engine.t = 2;  // survive two crashes

  SimGatewayCluster gc(cfg);

  std::printf("== phase 1: sessions writing through different replicas ==\n");
  SimClient::Options o1;
  o1.client_id = 1;
  o1.replica = 0;  // owned by the node we crash in phase 3
  SimClient alice(gc, o1);
  SimClient::Options o2;
  o2.client_id = 2;
  o2.replica = 3;
  SimClient bob(gc, o2);

  alice.submit(KvStore::encode_put("user:42", "alice"));
  bob.submit(KvStore::encode_put("user:43", "bob"));
  bob.submit(KvStore::encode_put("config", "v1"));
  gc.sim().run();

  std::printf("== phase 2: two sessions race a CAS on the same key ==\n");
  alice.submit(KvStore::encode_put("lease", "free"));
  gc.sim().run();
  alice.submit(KvStore::encode_cas("lease", "free", "held-by-alice"));
  bob.submit(KvStore::encode_cas("lease", "free", "held-by-bob"));
  gc.sim().run();
  std::printf("   lease winner (agreed by all): %s\n",
              gc.store(1).get("lease")->c_str());

  std::printf("== phase 3: crash the sequencer mid-session ==\n");
  // Node 0 both sequences the ring and owns Alice's connection. Crashing it
  // mid-stream forces her to fail over to a surviving replica and re-send
  // anything unanswered; the replicated session table guarantees each
  // bulk:N still applies exactly once — a retry of an already-executed
  // command is answered from the reply cache, never re-applied.
  const int kBulk = 20;
  for (int i = 0; i < kBulk; ++i) {
    alice.submit(KvStore::encode_put("bulk:" + std::to_string(i), "x"));
  }
  gc.sim().schedule(5 * kMillisecond, [&] {
    std::printf("   !! crashing node 0 (the sequencer)\n");
    gc.crash(0);
  });
  gc.sim().run();
  alice.submit(KvStore::encode_put("after-crash", "still-working"));
  gc.sim().run();

  std::printf("\nreplica fingerprints (survivors):\n");
  for (NodeId n = 1; n < 5; ++n) {
    std::printf("  replica %u: %016llx  (%zu keys, %llu commands)\n", n,
                static_cast<unsigned long long>(gc.store(n).fingerprint()),
                gc.store(n).size(),
                static_cast<unsigned long long>(gc.store(n).applied_commands()));
  }

  // Exactly-once, checked three ways: the survivors are bit-identical, the
  // command count matches the number of *distinct* commands the sessions
  // issued (a duplicated bulk:N would inflate it), and the protocol
  // invariants hold.
  bool identical = gc.check_replicas_converged().empty();
  const std::uint64_t distinct_commands =
      3       // phase 1 puts
      + 3     // phase 2: lease put + two CAS
      + kBulk // phase 3 bulk stream
      + 1;    // after-crash
  bool exactly_once = true;
  for (NodeId n = 1; n < 5; ++n) {
    exactly_once = exactly_once &&
                   gc.store(n).applied_commands() == distinct_commands;
  }
  bool sessions_ok = alice.gave_up() == 0 && bob.gave_up() == 0 &&
                     alice.idle() && bob.idle();
  GatewayCounters counters = gc.gateway_counters();
  std::printf("\nsession retries answered from the reply cache: %llu\n",
              static_cast<unsigned long long>(counters.duplicate_hits +
                                              counters.duplicate_applies_suppressed));
  std::string err = gc.cluster().check_all();
  std::printf("replicas identical: %s | exactly-once: %s | invariants: %s\n",
              identical ? "YES" : "NO", exactly_once ? "YES" : "NO",
              err.empty() ? "OK" : err.c_str());
  return (identical && exactly_once && sessions_ok && err.empty()) ? 0 : 1;
}
